/// \file trace.hpp
/// Scoped-span tracer emitting chrome://tracing "trace event format" JSON.
///
/// One `Tracer` owns a fixed set of pre-sized per-thread event buffers:
/// each thread acquires a buffer slot on its first span (one atomic
/// fetch-add, cached in a thread_local afterwards) and then records
/// complete events ("ph":"X") into it without locks or heap allocation —
/// a span on the simulation hot path costs two clock reads and one
/// bounded push_back. When a buffer fills, further events on that thread
/// are counted as dropped rather than reallocating, so tracing never
/// perturbs the allocation-free steady-state contract of the epoch loops.
///
/// All spans share one monotonic clock (`now_ns`, a process-wide
/// steady_clock origin), which is also the clock behind the bench
/// `TimingLog` section timers (`Stopwatch`) — bench timings and runtime
/// traces are the same time path. The produced JSON loads directly in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Span names must have static storage duration (string literals), or be
/// interned through `Tracer::intern` (which allocates, so intern at setup
/// time only).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mflb::trace {

/// Nanoseconds on the process-wide monotonic timeline (steady_clock,
/// origin captured on first use). Shared by every Tracer and Stopwatch so
/// spans from different components land on one comparable time axis.
std::uint64_t now_ns() noexcept;

/// Minimal section timer over the shared trace clock — the clock path the
/// bench TimingLog rows are measured on.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(now_ns()) {}
    void restart() noexcept { start_ = now_ns(); }
    std::uint64_t start_ns() const noexcept { return start_; }
    double seconds() const noexcept {
        return static_cast<double>(now_ns() - start_) * 1e-9;
    }

private:
    std::uint64_t start_;
};

/// Collector of complete-span events with per-thread pre-sized buffers.
class Tracer {
public:
    /// One completed span; times are `now_ns` timestamps.
    struct Event {
        const char* name = nullptr;
        std::uint64_t begin_ns = 0;
        std::uint64_t end_ns = 0;
    };

    /// \param max_threads        buffer slots; threads beyond this drop events.
    /// \param events_per_thread  capacity of each slot's event buffer.
    explicit Tracer(std::size_t max_threads = 64, std::size_t events_per_thread = 1 << 15);
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Copies `name` into tracer-owned storage and returns a pointer stable
    /// for the tracer's lifetime. Allocates — call at setup time, not from
    /// the hot path; hot-path spans should use string literals.
    const char* intern(std::string_view name);

    /// Records one completed span on the calling thread's buffer.
    /// Lock-free and allocation-free; drops (and counts) when full.
    void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) noexcept;

    /// Buffer slots claimed by distinct threads so far.
    std::size_t threads_used() const noexcept;
    /// Events recorded across all thread buffers. Call only while no other
    /// thread is recording (e.g. after the parallel phase has joined).
    std::size_t event_count() const noexcept;
    /// Events discarded because a buffer was full or the thread limit was hit.
    std::size_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

    /// Events of buffer slot `tid` in record order (tests / inspection).
    const std::vector<Event>& thread_events(std::size_t tid) const;

    /// Serializes everything recorded so far as chrome://tracing JSON
    /// ({"traceEvents": [...]}). Same quiescence requirement as event_count.
    void to_json(std::string& out) const;
    /// Writes to_json() to `path`; returns false (and logs) on I/O failure.
    bool write(const std::string& path) const;

private:
    struct ThreadBuffer {
        std::vector<Event> events;
    };

    ThreadBuffer* local_buffer() noexcept;

    std::uint64_t id_;                       ///< process-unique tracer id.
    std::vector<ThreadBuffer> buffers_;
    std::atomic<std::size_t> next_slot_{0};
    std::atomic<std::size_t> dropped_{0};
    std::mutex intern_mutex_;
    std::deque<std::string> interned_;
};

/// Installs `tracer` as the process-wide ambient tracer (nullptr clears).
/// Components without an explicit tracer handle — the shared thread pool's
/// task loop, bench section timers — consult this; everything else receives
/// its Tracer* through the TelemetrySession plumbing.
void set_active_tracer(Tracer* tracer) noexcept;
/// Current ambient tracer, or nullptr (one relaxed atomic load).
Tracer* active_tracer() noexcept;

/// RAII complete-span: records [construction, destruction) on `tracer`.
/// A null tracer makes every operation a cheap no-op — the disabled path is
/// a single predictable branch.
class ScopedSpan {
public:
    ScopedSpan(Tracer* tracer, const char* name) noexcept : tracer_(tracer) {
        if (tracer_ != nullptr) {
            name_ = name;
            begin_ns_ = now_ns();
        }
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() {
        if (tracer_ != nullptr) {
            tracer_->record(name_, begin_ns_, now_ns());
        }
    }

private:
    Tracer* tracer_;
    const char* name_ = nullptr;
    std::uint64_t begin_ns_ = 0;
};

} // namespace mflb::trace
