/// \file statistics.hpp
/// Streaming statistics and confidence intervals for Monte Carlo estimates.
///
/// Every figure in the paper reports means with 95% confidence intervals over
/// n = 100 independent simulations; `RunningStat` (Welford) accumulates the
/// replications and `confidence_interval_95` turns them into the shaded
/// regions / error bars of Figures 4-6.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mflb {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStat {
public:
    /// Adds one observation.
    void add(double x) noexcept;
    /// Merges another accumulator (parallel reduction; Chan et al.).
    void merge(const RunningStat& other) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 for fewer than two observations.
    double variance() const noexcept;
    double stddev() const noexcept;
    /// Standard error of the mean; 0 for fewer than two observations.
    double standard_error() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Symmetric confidence half-width around the mean.
struct ConfidenceInterval {
    double mean = 0.0;
    double half_width = 0.0;
    std::size_t n = 0;

    double lower() const noexcept { return mean - half_width; }
    double upper() const noexcept { return mean + half_width; }
};

/// 95% CI using the Student-t critical value (normal for large n).
ConfidenceInterval confidence_interval_95(const RunningStat& stat) noexcept;

/// Two-sided Student-t critical value at 97.5% for `dof` degrees of freedom.
/// Exact tabulated values for small dof, asymptotic 1.959964 beyond.
double student_t_975(std::size_t dof) noexcept;

/// Mean of a sample.
double mean_of(std::span<const double> xs) noexcept;
/// Unbiased sample variance.
double variance_of(std::span<const double> xs) noexcept;

/// Streaming quantile estimator — the P² algorithm of Jain & Chlamtac
/// (CACM 1985): five markers track the target quantile with O(1) memory and
/// O(1) update cost, no sample storage and no allocation. This is how the
/// event-driven simulator reports p50/p95/p99 sojourn times over millions of
/// jobs without keeping them. Exact (sorted-buffer) for the first five
/// observations, approximate afterwards; accuracy is excellent for smooth
/// distributions and degrades gracefully for heavy tails.
class P2Quantile {
public:
    /// \param p target quantile in (0, 1), e.g. 0.95.
    explicit P2Quantile(double p);

    void add(double x) noexcept;
    /// Folds another estimator of the *same* target quantile into this one
    /// (parallel reduction across shards/replications). Exact while the
    /// combined stream still fits the five-sample buffer; beyond that the
    /// merged markers are re-derived by inverting the count-weighted mixture
    /// of the two piecewise-linear marker CDFs at the P² desired positions,
    /// so the result tracks the quantile of the concatenated stream (tested
    /// against exact sample quantiles). Throws std::invalid_argument if the
    /// two estimators target different quantiles.
    void merge(const P2Quantile& other);
    std::size_t count() const noexcept { return count_; }
    double quantile() const noexcept { return p_; }
    /// Current estimate of the p-quantile; 0 before any observation.
    double value() const noexcept;

private:
    double p_;
    double heights_[5];   ///< marker heights q_i (the value estimates).
    double positions_[5]; ///< marker positions n_i (1-based ranks).
    double desired_[5];   ///< desired positions n'_i.
    double rate_[5];      ///< dn'_i per observation.
    std::size_t count_ = 0;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const noexcept { return counts_.size(); }
    std::size_t total() const noexcept { return total_; }
    double bin_lower(std::size_t i) const noexcept;
    /// Renders a compact ASCII bar chart (used by example binaries).
    std::string ascii(std::size_t width = 40) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace mflb
