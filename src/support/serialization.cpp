#include "support/serialization.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mflb {

namespace {
std::string format_double(double v) {
    std::ostringstream out;
    out << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    return out.str();
}

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) {
        return {};
    }
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}
} // namespace

void Archive::put(const std::string& key, double value) {
    scalars_[key] = format_double(value);
}

void Archive::put(const std::string& key, std::int64_t value) {
    scalars_[key] = std::to_string(value);
}

void Archive::put(const std::string& key, const std::string& value) {
    scalars_[key] = value;
}

void Archive::put(const std::string& key, const std::vector<double>& values) {
    vectors_[key] = values;
}

bool Archive::contains(const std::string& key) const {
    return scalars_.count(key) > 0 || vectors_.count(key) > 0;
}

double Archive::get_double(const std::string& key) const {
    auto it = scalars_.find(key);
    if (it == scalars_.end()) {
        throw std::invalid_argument("Archive: missing scalar key '" + key + "'");
    }
    return std::stod(it->second);
}

std::int64_t Archive::get_int(const std::string& key) const {
    auto it = scalars_.find(key);
    if (it == scalars_.end()) {
        throw std::invalid_argument("Archive: missing scalar key '" + key + "'");
    }
    return std::stoll(it->second);
}

std::string Archive::get_string(const std::string& key) const {
    auto it = scalars_.find(key);
    if (it == scalars_.end()) {
        throw std::invalid_argument("Archive: missing scalar key '" + key + "'");
    }
    return it->second;
}

std::vector<double> Archive::get_vector(const std::string& key) const {
    auto it = vectors_.find(key);
    if (it == vectors_.end()) {
        throw std::invalid_argument("Archive: missing vector key '" + key + "'");
    }
    return it->second;
}

std::string Archive::to_string() const {
    std::ostringstream out;
    for (const auto& [key, value] : scalars_) {
        out << key << " = " << value << '\n';
    }
    for (const auto& [key, values] : vectors_) {
        out << key << " = [";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i > 0) {
                out << ", ";
            }
            out << format_double(values[i]);
        }
        out << "]\n";
    }
    return out.str();
}

Archive Archive::from_string(const std::string& text) {
    Archive archive;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#') {
            continue;
        }
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("Archive: missing '=' on line " + std::to_string(line_no));
        }
        const std::string key = trim(trimmed.substr(0, eq));
        const std::string value = trim(trimmed.substr(eq + 1));
        if (key.empty()) {
            throw std::invalid_argument("Archive: empty key on line " + std::to_string(line_no));
        }
        if (!value.empty() && value.front() == '[') {
            if (value.back() != ']') {
                throw std::invalid_argument("Archive: unterminated vector on line " +
                                            std::to_string(line_no));
            }
            std::vector<double> values;
            std::stringstream items(value.substr(1, value.size() - 2));
            std::string item;
            while (std::getline(items, item, ',')) {
                const std::string t = trim(item);
                if (!t.empty()) {
                    values.push_back(std::stod(t));
                }
            }
            archive.vectors_[key] = std::move(values);
        } else {
            archive.scalars_[key] = value;
        }
    }
    return archive;
}

bool Archive::save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) {
        return false;
    }
    file << to_string();
    return static_cast<bool>(file);
}

Archive Archive::load(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw std::invalid_argument("Archive: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return from_string(buffer.str());
}

} // namespace mflb
