/// \file telemetry.hpp
/// Unified telemetry layer: metrics registry + per-epoch time-series sink.
///
/// `MetricsRegistry` holds named counters, gauges, and P²-backed histograms.
/// Counters and histograms have one *lane per slot* — a slot is a shard (or
/// rollout slot, or worker) that updates its own lane wait-free during the
/// parallel phase; lanes are folded into the totals in fixed ascending slot
/// order at the epoch barrier (`merge_slots`). Telemetry therefore never
/// consumes RNG draws, never introduces thread-count-dependent reduction
/// orders, and never perturbs the simulators' determinism contract: golden
/// trajectories are bit-exact with telemetry on or off, and the emitted
/// series themselves are a function of (seed, K) only.
///
/// `EpochSeriesSink` turns `MetricsRow` records into JSONL (default) or CSV
/// (path ending in ".csv") — one row per decision epoch or trainer
/// iteration. `TelemetrySession` bundles registry, sink, and the span
/// `trace::Tracer` behind a single non-owning pointer that every simulator
/// and trainer accepts; a null session (the default everywhere) keeps the
/// instrumented code on a single predictable branch.
///
/// Allocation contract: registration, `ensure_slots`, and sink opening
/// allocate (setup time); `add`/`set`/`observe`/`merge_slots` and steady-state
/// row emission do not (row and line buffers grow to a high-water mark on the
/// first rows, then are reused) — tests/test_hotpath_alloc.cpp pins this for
/// the sharded epoch loop with telemetry enabled.
#pragma once

#include "support/statistics.hpp"
#include "support/trace.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mflb {

/// One time-series record: a series name, a step index, and a flat list of
/// named numeric fields. Keys must have static storage duration or be owned
/// by the registry (its metric names are stable for its lifetime).
class MetricsRow {
public:
    struct Field {
        const char* key = nullptr;
        double value = 0.0;
        bool integral = false;
    };

    MetricsRow() { fields_.reserve(kReservedFields); }

    /// Starts a fresh row; keeps the field capacity (allocation-free reuse).
    void reset(const char* series, std::int64_t step) noexcept {
        series_ = series;
        step_ = step;
        fields_.clear();
    }
    void push(const char* key, double value) { fields_.push_back(Field{key, value, false}); }
    void push_int(const char* key, std::int64_t value) {
        fields_.push_back(Field{key, static_cast<double>(value), true});
    }

    const char* series() const noexcept { return series_; }
    std::int64_t step() const noexcept { return step_; }
    std::size_t size() const noexcept { return fields_.size(); }
    const Field& field(std::size_t i) const { return fields_[i]; }

private:
    static constexpr std::size_t kReservedFields = 64;

    const char* series_ = "";
    std::int64_t step_ = 0;
    std::vector<Field> fields_;
};

/// Named counters, gauges, and histograms with per-slot lanes and a
/// fixed-serial-order barrier merge. Registration is idempotent by name and
/// mutex-guarded; updates are wait-free writes to the caller's own lane
/// (slot s must be updated by at most one thread between merges); `set`,
/// `merge_slots`, and all reads belong to the serial barrier phase. The
/// sharded backend's pipelined barrier keeps this contract: gauges (the
/// `barrier_{prologue,overlap,reduce,parallel}_seconds` split) are set in
/// its serial interlude, and per-slot lanes are only merged after the
/// epoch's fan-out join.
class MetricsRegistry {
public:
    using Id = std::uint32_t;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Monotone total, accumulated across epochs from per-slot deltas.
    Id counter(std::string_view name);
    /// Last-value metric; serial (barrier-phase) writers only.
    Id gauge(std::string_view name);
    /// Streaming p50/p95/p99 (three P² estimators per lane); cumulative over
    /// the registry's lifetime, merged across lanes in slot order on read.
    Id histogram(std::string_view name);

    /// Grows every counter/histogram to at least `slots` lanes (never
    /// shrinks). Call before the parallel phase that uses them.
    void ensure_slots(std::size_t slots);
    std::size_t slots() const noexcept { return slots_; }

    void add(Id counter, double delta, std::size_t slot = 0) noexcept;
    void set(Id gauge, double value) noexcept;
    void observe(Id histogram, double x, std::size_t slot = 0) noexcept;

    /// Folds every counter's lane deltas into its total, lane 0 first —
    /// the fixed serial reduction order that makes the series thread-count
    /// invariant. Histogram lanes stay put (they merge on read).
    void merge_slots() noexcept;

    /// Total after the last merge_slots() plus lane 0 (the serial lane).
    double counter_total(Id counter) const noexcept;
    double gauge_value(Id gauge) const noexcept;
    /// Cross-lane merged estimate; `which` selects p50 (0), p95 (1), p99 (2).
    double histogram_quantile(Id histogram, int which) const;
    std::uint64_t histogram_count(Id histogram) const noexcept;

    /// Appends every metric to `row` in registration order: counters as
    /// integral totals, gauges as values, histograms as <name>_p50/_p95/_p99
    /// plus <name>_count. Allocation-free (key strings are pre-built).
    void append_to(MetricsRow& row) const;

private:
    struct Counter {
        std::string name;
        double total = 0.0;
        std::vector<double> lanes; ///< per-slot pending deltas.
    };
    struct Gauge {
        std::string name;
        double value = 0.0;
    };
    struct Hist {
        std::string name;
        std::string key_p50, key_p95, key_p99, key_count;
        std::vector<P2Quantile> p50, p95, p99; ///< one estimator per lane.
    };

    std::mutex register_mutex_;
    std::size_t slots_ = 1;
    std::vector<Counter> counters_;
    std::vector<Gauge> gauges_;
    std::vector<Hist> hists_;
};

enum class SeriesFormat { Jsonl, Csv };

/// Append-only row sink. JSONL writes one self-describing object per row;
/// CSV fixes its column set from the first row and warns once (skipping the
/// row) if a later row's fields differ — use CSV for single-series runs.
/// `write` is mutex-serialized so concurrently instrumented components
/// interleave whole lines, never bytes.
class EpochSeriesSink {
public:
    EpochSeriesSink() = default;
    EpochSeriesSink(const EpochSeriesSink&) = delete;
    EpochSeriesSink& operator=(const EpochSeriesSink&) = delete;
    ~EpochSeriesSink();

    /// Opens `path` (truncating); format is CSV iff it ends in ".csv".
    /// Returns false (and logs) on failure.
    bool open_file(const std::string& path);
    /// Collects rows into an in-memory buffer instead (tests).
    void open_memory(SeriesFormat format);

    bool enabled() const noexcept { return file_ != nullptr || memory_; }
    SeriesFormat format() const noexcept { return format_; }

    void write_row(const MetricsRow& row);
    void flush();
    void close();

    /// Everything written so far (memory mode only).
    const std::string& buffer() const noexcept { return memory_buffer_; }
    std::size_t rows_written() const noexcept { return rows_written_; }

private:
    void format_row(const MetricsRow& row);
    void emit_line();

    std::mutex mutex_;
    std::FILE* file_ = nullptr;
    bool memory_ = false;
    SeriesFormat format_ = SeriesFormat::Jsonl;
    std::string line_;
    std::string memory_buffer_;
    std::vector<std::string> csv_columns_; ///< fixed at the first row.
    bool csv_header_written_ = false;
    bool csv_mismatch_warned_ = false;
    std::size_t rows_written_ = 0;
};

/// End-to-end telemetry configuration, carried by ExperimentConfig and the
/// mflb_cli --metrics-out/--metrics-every/--trace-out flags.
struct TelemetryConfig {
    std::string metrics_out;        ///< series path; "" disables metrics.
    std::string trace_out;          ///< trace JSON path; "" disables spans.
    std::size_t metrics_every = 1;  ///< emit every k-th epoch row (>= 1).
    std::size_t trace_max_threads = 64;
    std::size_t trace_events_per_thread = 1 << 15;

    bool any_enabled() const noexcept { return !metrics_out.empty() || !trace_out.empty(); }
};

/// Owning bundle of registry + sink + tracer behind one pointer. A
/// default-constructed session is fully disabled; a configured one opens its
/// sinks up front and installs its tracer as the ambient tracer (so thread
/// pool task spans attach) until destruction. Flushes on destruction.
class TelemetrySession {
public:
    TelemetrySession() = default;
    explicit TelemetrySession(const TelemetryConfig& config);
    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;
    ~TelemetrySession();

    /// In-memory session for tests: metrics into a string buffer, plus an
    /// optional tracer (inspect via tracer()->to_json / thread_events).
    static std::unique_ptr<TelemetrySession> in_memory(SeriesFormat format = SeriesFormat::Jsonl,
                                                       bool with_trace = false);

    bool metrics_enabled() const noexcept { return sink_.enabled(); }
    std::size_t metrics_every() const noexcept { return metrics_every_; }
    MetricsRegistry& registry() noexcept { return registry_; }
    EpochSeriesSink& sink() noexcept { return sink_; }
    trace::Tracer* tracer() noexcept { return tracer_.get(); }

    /// Flushes the series sink and writes the trace file (if configured).
    void flush();

private:
    TelemetryConfig config_;
    std::size_t metrics_every_ = 1;
    MetricsRegistry registry_;
    EpochSeriesSink sink_;
    std::unique_ptr<trace::Tracer> tracer_;
    bool tracer_installed_ = false;
    bool trace_written_ = false;
};

/// The tracer of a possibly-null session (the null-safe accessor every
/// instrumented component uses to arm its ScopedSpans).
inline trace::Tracer* session_tracer(TelemetrySession* session) noexcept {
    return session != nullptr ? session->tracer() : nullptr;
}

} // namespace mflb
