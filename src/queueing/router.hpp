/// \file router.hpp
/// Pluggable routing disciplines for the finite-system backends: the
/// classical load-balancer fleet the learned mean-field policy is compared
/// against (random, round-robin, JSQ, JSQ(d), SQ over a stale snapshot).
///
/// Dispatch seam: a classical router is an *epoch-barrier weight law*. At
/// every decision epoch it maps the Δt-stale snapshot of queue states to a
/// per-queue routing weight vector w; the backends then realize the common
/// job-stream semantics each in their own exact way —
///  - `FiniteSystem` converts weights to frozen per-queue Poisson rates
///    M·λ_t·w_j/Σw for its per-queue epoch kernels;
///  - `DesSystem` thins the aggregated Poisson arrival stream by binary
///    search on the weight prefix sums (one destination draw per job);
///  - `ShardedDesSystem` partitions the weights into per-shard masses at the
///    barrier (`partition_shard_mass`) and each shard thins its own stream,
///    keeping the parallel phase lock-free.
/// Because all three consume the identical law, the routers are
/// statistically equivalent across backends by construction
/// (tests/test_router_equivalence.cpp). Classical routers operate at the
/// job-stream level (the N → ∞ Poisson limit): `ClientModel` and
/// `num_clients` are ignored, exactly like `ClientModel::InfiniteClients`.
///
/// The exception is round-robin, which is *not* a weight law (its
/// interarrival times per queue are Erlang, not exponential): the DES
/// backends realize it with a cyclic arrival cursor (global on `DesSystem`,
/// shard-local on `ShardedDesSystem` — statistically indistinguishable at
/// the epoch scale since both cycles are near-deterministic), while the
/// rate-based `FiniteSystem` can only represent its equal-split mean
/// behavior (equal weights, documented caveat: drop/length statistics then
/// coincide with `random`).
///
/// Staleness semantics: `jsq` and `jsq-d` read the epoch-start snapshot —
/// they are always exactly Δt stale, matching the paper's information model.
/// `sq-stale` adds the orthogonal staleness knob of the classical SQ(stale)
/// policy: it keeps its *own* frozen snapshot refreshed only every
/// `stale_period` time units (rounded up to whole epochs), so the decision
/// information can be arbitrarily older than Δt. At `stale_period == 0` it
/// refreshes every epoch and is bit-identical to `jsq` (regression-pinned).
///
/// `RouterKind::Policy` is not a classical router: it marks the learned /
/// decision-rule path, which keeps its exact legacy code (goldens stay bit
/// for bit). Determinism contract: `epoch_weights` consumes no RNG draws
/// and performs no allocation after construction.
#pragma once

#include "field/arrival_flow.hpp"
#include "field/decision_rule.hpp"

#include <span>
#include <string_view>
#include <vector>

namespace mflb {

/// Routing discipline selecting each arriving job's destination queue.
enum class RouterKind {
    Policy,     ///< the decision-rule path (learned or fixed mean-field rule).
    Random,     ///< uniform random queue.
    RoundRobin, ///< cyclic (equal-split mean behavior on `FiniteSystem`).
    Jsq,        ///< join the shortest queue of the Δt-stale snapshot.
    JsqD,       ///< JSQ over d uniformly sampled queues (power of d choices).
    SqStale,    ///< JSQ over an own snapshot refreshed every `stale_period`.
};

/// "policy" / "random" / "round-robin" / "jsq" / "jsq-d" / "sq-stale".
std::string_view router_name(RouterKind kind) noexcept;
/// Inverse of router_name; throws std::invalid_argument naming the options.
RouterKind parse_router(std::string_view name);

/// Declarative router selection carried by `FiniteSystemConfig`.
struct RouterSpec {
    RouterKind kind = RouterKind::Policy;
    /// JsqD only: number of sampled queues per job (>= 1). Independent of
    /// the decision-rule `d` — the classical baseline has its own knob.
    int d = 2;
    /// SqStale only: refresh period of the router's own snapshot, in time
    /// units (>= 0; rounded up to whole decision epochs; 0 = every epoch).
    double stale_period = 0.0;
};

/// The epoch-barrier weight-law engine shared by the three backends (see
/// file comment). One instance per system; not thread-safe (the sharded
/// backend calls it only in its serial barrier phase).
class EpochRouter {
public:
    /// Sizes all scratch up front (JsqD builds its |Z|^d routing table once
    /// per epoch via the shared `compute_destination_law_into` helper — the
    /// identical arithmetic as the mean-field policy path). Throws
    /// std::invalid_argument on out-of-range spec parameters.
    EpochRouter(const RouterSpec& spec, std::size_t num_queues, std::size_t num_states,
                double dt);

    const RouterSpec& spec() const noexcept { return spec_; }
    RouterKind kind() const noexcept { return spec_.kind; }
    /// True for every kind except Policy (the backends dispatch on this).
    bool active() const noexcept { return spec_.kind != RouterKind::Policy; }
    /// Snapshot refresh interval in epochs (SqStale; 1 otherwise).
    int refresh_every() const noexcept { return refresh_every_; }

    /// Forgets the SqStale frozen snapshot; call from the system's reset.
    void reset() noexcept { have_frozen_ = false; }

    /// Fills the per-queue routing weights for the epoch starting now.
    /// `snapshot` is the epoch-start queue-state vector (the Δt-stale
    /// information), `epoch` the decision-epoch index, `weights` one slot
    /// per queue (unnormalized; the backends normalize). Consumes no RNG
    /// draws; allocation-free. Must not be called for the Policy kind.
    void epoch_weights(std::span<const int> snapshot, int epoch, std::span<double> weights);

private:
    static void jsq_weights(std::span<const int> snapshot, std::span<double> weights);

    RouterSpec spec_;
    int refresh_every_ = 1;
    // SqStale: the router's own frozen snapshot.
    std::vector<int> frozen_;
    bool have_frozen_ = false;
    // JsqD: scratch for the shared destination-law computation.
    std::vector<double> hist_;
    std::vector<double> g_;
    std::vector<int> tuple_;
    std::vector<double> suffix_;
    std::vector<DecisionRule> jsq_rule_; ///< 0 or 1 element (JsqD only).
};

} // namespace mflb
