#include "queueing/gillespie.hpp"

#include "math/expm.hpp"
#include "math/matrix.hpp"

#include <stdexcept>

namespace mflb {

QueueEpochResult simulate_queue_epoch(int z0, double arrival_rate, double service_rate,
                                      int buffer, double dt, Rng& rng) noexcept {
    QueueEpochResult result;
    int z = z0;
    double t = 0.0;
    while (true) {
        // Competing exponential clocks: arrivals always tick (a blocked
        // arrival at z == B is a drop event); services tick while busy.
        const double service = z > 0 ? service_rate : 0.0;
        const double total = arrival_rate + service;
        if (total <= 0.0) {
            break;
        }
        const double wait = rng.exponential(total);
        if (t + wait > dt) {
            break;
        }
        result.queue_length_area += static_cast<double>(z) * wait;
        if (z > 0) {
            result.busy_time += wait;
        }
        t += wait;
        if (rng.uniform() * total < arrival_rate) {
            if (z < buffer) {
                ++z;
                ++result.arrivals;
            } else {
                ++result.drops;
            }
        } else {
            --z;
            ++result.services;
        }
    }
    result.queue_length_area += static_cast<double>(z) * (dt - t);
    if (z > 0) {
        result.busy_time += dt - t;
    }
    result.final_state = z;
    return result;
}

QueueTransientResult queue_transient_solution(int z0, double arrival_rate, double service_rate,
                                              int buffer, double dt) {
    if (z0 < 0 || z0 > buffer) {
        throw std::invalid_argument("queue_transient_solution: z0 out of range");
    }
    const auto n = static_cast<std::size_t>(buffer + 2);
    Matrix q(n, n);
    for (int i = 1; i <= buffer; ++i) {
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = arrival_rate;
        q(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i)) = service_rate;
    }
    for (int i = 0; i <= buffer; ++i) {
        double outflow = 0.0;
        if (i < buffer) {
            outflow += arrival_rate;
        }
        if (i > 0) {
            outflow += service_rate;
        }
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = -outflow;
    }
    q(static_cast<std::size_t>(buffer + 1), static_cast<std::size_t>(buffer)) = arrival_rate;

    std::vector<double> e(n, 0.0);
    e[static_cast<std::size_t>(z0)] = 1.0;
    const std::vector<double> propagated = expm_uniformized_action(q, dt, e);

    QueueTransientResult result;
    result.state_distribution.assign(propagated.begin(), propagated.end() - 1);
    result.expected_drops = propagated.back();
    return result;
}

} // namespace mflb
