/// \file sojourn.hpp
/// Exact per-job sojourn-time tracking for the finite-system simulator — a
/// metrics extension beyond the paper's drop objective (its introduction
/// motivates response times; JSQ literature reports sojourn/response times).
///
/// Queues are FIFO, so a job's sojourn time is the interval from its
/// accepted arrival to its service completion. The tracker keeps the arrival
/// timestamps of the jobs currently in each buffer; the Gillespie kernel
/// variant below records every accepted arrival and completed service with
/// exact event times.
/// \see queueing/gillespie.hpp for the underlying epoch simulation.
#pragma once

#include "queueing/gillespie.hpp"
#include "queueing/service_distribution.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

#include <vector>

namespace mflb {

/// FIFO timestamp buffer of the jobs inside one queue.
class JobTimestamps {
public:
    explicit JobTimestamps(int capacity);

    int size() const noexcept { return static_cast<int>(count_); }
    /// Records an accepted arrival at absolute time `t`.
    void push(double t);
    /// Completes the oldest job at absolute time `t`; returns its sojourn.
    double pop(double t);

private:
    std::vector<double> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/// The three streaming sojourn percentiles (p50/p95/p99) the event-driven
/// backends report, behind a single `record` call — so the per-departure
/// hot path pays one `track_sojourn` branch (the caller's) instead of
/// three, and resets/merges stay one statement. Plain value type: fixed
/// size, allocation-free, copyable (the counting-allocator tests cover the
/// departure path that uses it).
class SojournRecorder {
public:
    /// Feeds one completed job's sojourn into all three estimators.
    void record(double sojourn) noexcept {
        p50_.add(sojourn);
        p95_.add(sojourn);
        p99_.add(sojourn);
    }
    /// Folds another recorder's stream into this one (fixed shard order in
    /// the sharded backend's cross-shard merge).
    void merge(const SojournRecorder& other) {
        p50_.merge(other.p50_);
        p95_.merge(other.p95_);
        p99_.merge(other.p99_);
    }
    /// Discards every observation (fresh estimators).
    void reset() { *this = SojournRecorder{}; }

    double p50() const noexcept { return p50_.value(); }
    double p95() const noexcept { return p95_.value(); }
    double p99() const noexcept { return p99_.value(); }

private:
    P2Quantile p50_{0.5};
    P2Quantile p95_{0.95};
    P2Quantile p99_{0.99};
};

/// Epoch result extended with sojourn samples.
struct SojournEpochResult {
    QueueEpochResult queue;           ///< the usual drop/arrival counters.
    RunningStat sojourn;              ///< completed jobs' sojourn times.
};

/// Exact simulation of one queue for `dt` units starting at absolute time
/// `t0`, with the jobs currently in the buffer described by `jobs` (whose
/// size must equal the queue fill). Updates `jobs` in place.
SojournEpochResult simulate_queue_epoch_sojourn(JobTimestamps& jobs, double t0,
                                                double arrival_rate, double service_rate,
                                                int buffer, double dt, Rng& rng);

/// General-service (M/G/1/B) variant of the per-queue epoch kernel: the
/// `FiniteSystem` path for non-exponential `ServiceDistribution`s and
/// heterogeneous server speeds, where the service-completion clock is *not*
/// memoryless and must be carried across epochs. `next_completion` is the
/// absolute completion time of the job in service (+infinity when idle),
/// updated in place; Poisson arrivals are redrawn each epoch (exact by
/// memorylessness of the arrival process, whose rate is frozen per epoch).
/// Queue j's service times are `service.sample(rng) / speed`. When `jobs`
/// is non-null, accepted arrivals / completions are timestamped through it
/// and completed sojourns land in `result.sojourn`. Starts at absolute time
/// `t0` with fill `z0`; allocation-free.
SojournEpochResult simulate_queue_epoch_general(int z0, double arrival_rate,
                                                const ServiceDistribution& service,
                                                double speed, int buffer, double t0,
                                                double dt, double& next_completion,
                                                Rng& rng, JobTimestamps* jobs);

/// Stationary M/M/1/B mean sojourn time via Little's law: E[T] = E[L] /
/// (λ (1 - P_B)) under the truncated-geometric stationary law. Oracle for
/// tests and capacity-planning examples.
double mm1b_mean_sojourn(double arrival_rate, double service_rate, int buffer);

/// Stationary M/M/1/B blocking probability P_B.
double mm1b_blocking_probability(double arrival_rate, double service_rate, int buffer);

/// Stationary M/M/1/B mean queue length E[L].
double mm1b_mean_length(double arrival_rate, double service_rate, int buffer);

} // namespace mflb
