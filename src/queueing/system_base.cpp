#include "queueing/system_base.hpp"

#include <stdexcept>

namespace mflb {

std::vector<double> histogram_from_counts(std::span<const int> state_counts,
                                          std::size_t num_queues) {
    std::vector<double> h(state_counts.size(), 0.0);
    const double weight = 1.0 / static_cast<double>(num_queues);
    for (std::size_t z = 0; z < state_counts.size(); ++z) {
        h[z] = weight * static_cast<double>(state_counts[z]);
    }
    return h;
}

void histogram_from_counts_into(std::span<const int> state_counts, std::size_t num_queues,
                                std::vector<double>& out) {
    out.resize(state_counts.size());
    const double weight = 1.0 / static_cast<double>(num_queues);
    for (std::size_t z = 0; z < state_counts.size(); ++z) {
        out[z] = weight * static_cast<double>(state_counts[z]);
    }
}

std::vector<double> sampled_histogram(std::span<const int> queue_states,
                                      std::size_t num_states, std::size_t sample_size,
                                      Rng& rng) {
    std::vector<double> h(num_states, 0.0);
    const double weight = 1.0 / static_cast<double>(sample_size);
    for (std::size_t k = 0; k < sample_size; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_below(queue_states.size()));
        h[static_cast<std::size_t>(queue_states[j])] += weight;
    }
    return h;
}

void sampled_histogram_into(std::span<const int> queue_states, std::size_t num_states,
                            std::size_t sample_size, Rng& rng, std::vector<double>& out) {
    out.assign(num_states, 0.0);
    const double weight = 1.0 / static_cast<double>(sample_size);
    for (std::size_t k = 0; k < sample_size; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_below(queue_states.size()));
        out[static_cast<std::size_t>(queue_states[j])] += weight;
    }
}

EpisodeAccumulator::EpisodeAccumulator(double discount, std::size_t epochs_hint)
    : gamma_(discount) {
    stats_.drops_per_epoch.reserve(epochs_hint);
}

void EpisodeAccumulator::add(const EpochStats& epoch) {
    stats_.total_drops_per_queue += epoch.drops_per_queue;
    stats_.discounted_return -= weight_ * epoch.drops_per_queue;
    stats_.dropped_packets += epoch.dropped_packets;
    stats_.accepted_packets += epoch.accepted_packets;
    stats_.drops_per_epoch.push_back(epoch.drops_per_queue);
    length_sum_ += epoch.mean_queue_length;
    util_sum_ += epoch.server_utilization;
    sojourn_sum_ += epoch.mean_sojourn * static_cast<double>(epoch.completed_jobs);
    stats_.completed_jobs += epoch.completed_jobs;
    weight_ *= gamma_;
}

EpisodeStats EpisodeAccumulator::finish() {
    const auto epochs = static_cast<double>(stats_.drops_per_epoch.size());
    if (epochs > 0) {
        stats_.mean_queue_length = length_sum_ / epochs;
        stats_.server_utilization = util_sum_ / epochs;
    }
    if (stats_.completed_jobs > 0) {
        stats_.mean_sojourn = sojourn_sum_ / static_cast<double>(stats_.completed_jobs);
    }
    return std::move(stats_);
}

SystemBase::SystemBase(ArrivalProcess arrivals, double dt, int horizon, std::size_t num_queues)
    : arrivals_(std::move(arrivals)), dt_(dt), horizon_(horizon) {
    if (num_queues == 0) {
        throw std::invalid_argument("SystemBase: need at least one queue");
    }
    if (dt_ <= 0.0) {
        throw std::invalid_argument("SystemBase: dt must be positive");
    }
    if (horizon_ < 1) {
        throw std::invalid_argument("SystemBase: horizon must be positive");
    }
    queues_.assign(num_queues, 0);
}

void SystemBase::reset_base(Rng& rng) {
    lambda_state_ = arrivals_.sample_initial(rng);
    t_ = 0;
    conditioned_.reset();
    ++episodes_started_;
}

void SystemBase::set_telemetry(TelemetrySession* telemetry) {
    telemetry_ = telemetry;
    if (telemetry_ != nullptr && telemetry_->metrics_enabled()) {
        MetricsRegistry& registry = telemetry_->registry();
        metric_ids_.arrivals = registry.counter("arrivals_total");
        metric_ids_.dropped = registry.counter("dropped_total");
        metric_ids_.served = registry.counter("served_total");
        metric_ids_.lambda = registry.gauge("lambda_gauge");
        metric_ids_.qlen_mean = registry.gauge("qlen_mean_gauge");
        metric_ids_.utilization = registry.gauge("utilization_gauge");
    }
    on_telemetry_attached();
}

void SystemBase::record_epoch_telemetry(int epoch, double lambda_epoch,
                                        const EpochStats& stats) {
    MetricsRegistry& registry = telemetry_->registry();
    // Barrier-serial: fold the parallel phase's slot lanes in fixed order,
    // then account this epoch on the serial lane.
    registry.merge_slots();
    const std::uint64_t arrivals = stats.accepted_packets + stats.dropped_packets;
    registry.add(metric_ids_.arrivals, static_cast<double>(arrivals));
    registry.add(metric_ids_.dropped, static_cast<double>(stats.dropped_packets));
    registry.add(metric_ids_.served, static_cast<double>(stats.served_packets));
    registry.set(metric_ids_.lambda, lambda_epoch);
    registry.set(metric_ids_.qlen_mean, stats.mean_queue_length);
    registry.set(metric_ids_.utilization, stats.server_utilization);

    const std::size_t every = telemetry_->metrics_every();
    if (every > 1 && static_cast<std::size_t>(epoch) % every != 0) {
        return;
    }
    MetricsRow& row = telemetry_row_;
    row.reset(telemetry_series_, epoch);
    row.push_int("episode", static_cast<std::int64_t>(episodes_started_ > 0
                                                          ? episodes_started_ - 1
                                                          : 0));
    row.push("sim_time", dt_ * (static_cast<double>(epoch) + 1.0));
    row.push("lambda", lambda_epoch);
    row.push_int("arrivals", static_cast<std::int64_t>(arrivals));
    row.push_int("dropped", static_cast<std::int64_t>(stats.dropped_packets));
    row.push_int("accepted", static_cast<std::int64_t>(stats.accepted_packets));
    row.push_int("served", static_cast<std::int64_t>(stats.served_packets));
    row.push("drops_per_queue", stats.drops_per_queue);
    row.push("qlen_mean", stats.mean_queue_length);
    row.push("utilization", stats.server_utilization);
    row.push("sojourn_epoch_mean", stats.mean_sojourn);
    row.push_int("completed_jobs", static_cast<std::int64_t>(stats.completed_jobs));
    append_epoch_telemetry(row);
    registry.append_to(row);
    telemetry_->sink().write_row(row);
}

void SystemBase::condition_on(std::vector<std::size_t> lambda_states) {
    if (lambda_states.empty()) {
        throw std::invalid_argument("SystemBase: conditioned sequence must be non-empty");
    }
    for (std::size_t s : lambda_states) {
        if (s >= arrivals_.num_states()) {
            throw std::invalid_argument("SystemBase: conditioned state out of range");
        }
    }
    t_ = 0;
    lambda_state_ = lambda_states.front();
    conditioned_ = std::move(lambda_states);
}

void SystemBase::advance_epoch(Rng& rng) {
    ++t_;
    if (conditioned_) {
        const auto next_idx = static_cast<std::size_t>(t_);
        lambda_state_ = next_idx < conditioned_->size() ? (*conditioned_)[next_idx]
                                                        : conditioned_->back();
    } else {
        lambda_state_ = arrivals_.step(lambda_state_, rng);
    }
}

} // namespace mflb
