#include "queueing/sojourn.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mflb {

JobTimestamps::JobTimestamps(int capacity) : ring_(static_cast<std::size_t>(capacity) + 1) {
    if (capacity < 1) {
        throw std::invalid_argument("JobTimestamps: capacity must be >= 1");
    }
}

void JobTimestamps::push(double t) {
    if (count_ >= ring_.size()) {
        throw std::logic_error("JobTimestamps::push: buffer overflow");
    }
    ring_[(head_ + count_) % ring_.size()] = t;
    ++count_;
}

double JobTimestamps::pop(double t) {
    if (count_ == 0) {
        throw std::logic_error("JobTimestamps::pop: empty buffer");
    }
    const double arrival = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return t - arrival;
}

SojournEpochResult simulate_queue_epoch_sojourn(JobTimestamps& jobs, double t0,
                                                double arrival_rate, double service_rate,
                                                int buffer, double dt, Rng& rng) {
    SojournEpochResult result;
    int z = jobs.size();
    double t = 0.0;
    while (true) {
        const double service = z > 0 ? service_rate : 0.0;
        const double total = arrival_rate + service;
        if (total <= 0.0) {
            break;
        }
        const double wait = rng.exponential(total);
        if (t + wait > dt) {
            break;
        }
        result.queue.queue_length_area += static_cast<double>(z) * wait;
        if (z > 0) {
            result.queue.busy_time += wait;
        }
        t += wait;
        if (rng.uniform() * total < arrival_rate) {
            if (z < buffer) {
                ++z;
                ++result.queue.arrivals;
                jobs.push(t0 + t);
            } else {
                ++result.queue.drops;
            }
        } else {
            --z;
            ++result.queue.services;
            result.sojourn.add(jobs.pop(t0 + t));
        }
    }
    result.queue.queue_length_area += static_cast<double>(z) * (dt - t);
    if (z > 0) {
        result.queue.busy_time += dt - t;
    }
    result.queue.final_state = z;
    return result;
}

SojournEpochResult simulate_queue_epoch_general(int z0, double arrival_rate,
                                                const ServiceDistribution& service,
                                                double speed, int buffer, double t0,
                                                double dt, double& next_completion,
                                                Rng& rng, JobTimestamps* jobs) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    SojournEpochResult result;
    const double end = t0 + dt;
    int z = z0;
    double cursor = t0;
    // The arrival clock is memoryless, so redrawing it at the epoch start is
    // exact; the service clock is not and arrives via `next_completion`.
    double next_arrival =
        arrival_rate > 0.0 ? t0 + rng.exponential(arrival_rate) : kInf;
    const auto advance_to = [&](double t) {
        const double span = t - cursor;
        result.queue.queue_length_area += static_cast<double>(z) * span;
        if (z > 0) {
            result.queue.busy_time += span;
        }
        cursor = t;
    };
    while (true) {
        // Ties (possible with deterministic service) resolve departure
        // first, opening a buffer slot for the simultaneous arrival.
        const bool departure_next = next_completion <= next_arrival;
        const double t = departure_next ? next_completion : next_arrival;
        if (t > end) {
            break;
        }
        advance_to(t);
        if (departure_next) {
            --z;
            ++result.queue.services;
            if (jobs != nullptr) {
                result.sojourn.add(jobs->pop(t));
            }
            next_completion = z > 0 ? t + service.sample(rng) / speed : kInf;
        } else {
            if (z < buffer) {
                ++z;
                ++result.queue.arrivals;
                if (jobs != nullptr) {
                    jobs->push(t);
                }
                if (z == 1) {
                    next_completion = t + service.sample(rng) / speed;
                }
            } else {
                ++result.queue.drops;
            }
            next_arrival = t + rng.exponential(arrival_rate);
        }
    }
    advance_to(end);
    result.queue.final_state = z;
    return result;
}

namespace {
/// Stationary distribution of M/M/1/B: pi_k ∝ rho^k, truncated at B.
std::vector<double> mm1b_stationary(double rho, int buffer) {
    std::vector<double> pi(static_cast<std::size_t>(buffer) + 1);
    double normalizer = 0.0;
    double term = 1.0;
    for (int k = 0; k <= buffer; ++k) {
        pi[static_cast<std::size_t>(k)] = term;
        normalizer += term;
        term *= rho;
    }
    for (double& v : pi) {
        v /= normalizer;
    }
    return pi;
}
} // namespace

double mm1b_blocking_probability(double arrival_rate, double service_rate, int buffer) {
    if (arrival_rate <= 0.0 || service_rate <= 0.0 || buffer < 1) {
        throw std::invalid_argument("mm1b_blocking_probability: bad parameters");
    }
    return mm1b_stationary(arrival_rate / service_rate, buffer).back();
}

double mm1b_mean_length(double arrival_rate, double service_rate, int buffer) {
    if (arrival_rate <= 0.0 || service_rate <= 0.0 || buffer < 1) {
        throw std::invalid_argument("mm1b_mean_length: bad parameters");
    }
    const auto pi = mm1b_stationary(arrival_rate / service_rate, buffer);
    double mean = 0.0;
    for (std::size_t k = 0; k < pi.size(); ++k) {
        mean += static_cast<double>(k) * pi[k];
    }
    return mean;
}

double mm1b_mean_sojourn(double arrival_rate, double service_rate, int buffer) {
    const double blocking = mm1b_blocking_probability(arrival_rate, service_rate, buffer);
    const double effective_rate = arrival_rate * (1.0 - blocking);
    return mm1b_mean_length(arrival_rate, service_rate, buffer) / effective_rate;
}

} // namespace mflb
