/// \file system_base.hpp
/// Shared core of the finite simulators (unified simulation layer).
///
/// Every finite system in the paper and its extensions — the homogeneous
/// `FiniteSystem` of Section 2.1, the `HeterogeneousSystem` of the Section 5
/// discussion, and the power-of-d-with-memory `MemorySystem` — follows the
/// same synchronized-epoch skeleton: sample (or replay) the modulating
/// arrival chain λ_t of eq. (1), let the per-epoch kernel route clients and
/// evolve queues for Δt time units, accumulate epoch statistics, advance the
/// epoch clock. `SystemBase` owns exactly that skeleton — the λ-chain with
/// conditioned replay (Theorem 1 coupling), the queue-state vector, the
/// epoch clock, and the episode loop — so each simulator reduces to its
/// per-epoch kernel returning an `EpochStats`.
///
/// Determinism contract: the base consumes RNG draws in the same order the
/// pre-unification simulators did (λ_0 after the kernel's own reset draws,
/// λ advance after each epoch), so trajectories are bit-identical for a
/// fixed seed; tests/test_golden_trajectories.cpp pins this.
#pragma once

#include "field/arrival_process.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mflb {

/// Statistics of a single decision epoch, aggregated over all M queues.
struct EpochStats {
    double drops_per_queue = 0.0;        ///< D_t^{N,M} of eq. (6).
    std::uint64_t dropped_packets = 0;   ///< raw count across queues.
    std::uint64_t accepted_packets = 0;  ///< arrivals that entered a buffer.
    std::uint64_t served_packets = 0;    ///< completed services.
    double mean_queue_length = 0.0;      ///< time-average over the epoch.
    double server_utilization = 0.0;     ///< busy-time fraction.
    double mean_sojourn = 0.0;           ///< mean sojourn of jobs completed
                                         ///< this epoch (track_sojourn only).
    std::uint64_t completed_jobs = 0;    ///< sojourn sample count.
};

/// Episode-level summary; `total_drops_per_queue` is the quantity plotted in
/// Figures 4-6 ("average/total packet drops" per queue over ≈500 time units).
struct EpisodeStats {
    double total_drops_per_queue = 0.0;
    double discounted_return = 0.0; ///< -Σ_t γ^t D_t.
    std::uint64_t dropped_packets = 0;
    std::uint64_t accepted_packets = 0;
    double mean_queue_length = 0.0; ///< averaged over epochs.
    double server_utilization = 0.0;
    double mean_sojourn = 0.0;      ///< job-weighted mean sojourn (track_sojourn).
    std::uint64_t completed_jobs = 0;
    std::vector<double> drops_per_epoch;
};

/// H_t^M (eq. (2)) from an incrementally maintained per-state queue count —
/// the O(|Z|) read-out shared by the event-driven backends.
std::vector<double> histogram_from_counts(std::span<const int> state_counts,
                                          std::size_t num_queues);
/// Allocation-free variant for the epoch hot paths: resizes `out` to |Z|
/// (a no-op once warm) and writes the same values.
void histogram_from_counts_into(std::span<const int> state_counts, std::size_t num_queues,
                                std::vector<double>& out);

/// `sample_size`-queue estimate of H_t^M (paper §2.1 partial information):
/// samples queues uniformly with replacement; one `uniform_below` draw per
/// sample (the draw count is part of the simulators' determinism contract).
std::vector<double> sampled_histogram(std::span<const int> queue_states,
                                      std::size_t num_states, std::size_t sample_size,
                                      Rng& rng);
/// Allocation-free variant; identical draws and values.
void sampled_histogram_into(std::span<const int> queue_states, std::size_t num_states,
                            std::size_t sample_size, Rng& rng, std::vector<double>& out);

/// Folds per-epoch statistics into the episode summary — the single place
/// where the accumulation arithmetic (previously hand-duplicated in every
/// simulator's run_episode) lives.
class EpisodeAccumulator {
public:
    /// \param discount      γ weighting the per-epoch drops in the return.
    /// \param epochs_hint   expected epoch count (reserves drops_per_epoch).
    EpisodeAccumulator(double discount, std::size_t epochs_hint);

    void add(const EpochStats& epoch);
    /// Finalizes the per-epoch averages; call once, after the last add().
    EpisodeStats finish();

private:
    EpisodeStats stats_;
    double gamma_;
    double weight_ = 1.0;
    double length_sum_ = 0.0;
    double util_sum_ = 0.0;
    double sojourn_sum_ = 0.0;
};

/// Base of the synchronized-epoch simulators: owns the λ-chain (sampling,
/// stepping, conditioned replay), the queue-state vector, the epoch clock,
/// and the episode loop. Derived systems implement one decision epoch.
class SystemBase {
public:
    virtual ~SystemBase() = default;

    bool done() const noexcept { return t_ >= horizon_; }
    int time() const noexcept { return t_; }
    std::size_t lambda_state() const noexcept { return lambda_state_; }
    double lambda_value() const { return arrivals_.level(lambda_state_); }
    const ArrivalProcess& arrivals() const noexcept { return arrivals_; }
    double dt() const noexcept { return dt_; }
    int horizon() const noexcept { return horizon_; }
    /// Absolute time of the current decision epoch's boundaries, computed
    /// from the epoch index (drift-free — never accumulated). These are the
    /// barrier points of the epoch structure: both event-driven backends run
    /// their event loops on [epoch_start_time, epoch_end_time) and the
    /// sharded backend synchronizes its shards exactly here.
    double epoch_start_time() const noexcept { return dt_ * static_cast<double>(t_); }
    double epoch_end_time() const noexcept { return dt_ * (static_cast<double>(t_) + 1.0); }
    std::size_t num_queues() const noexcept { return queues_.size(); }
    const std::vector<int>& queue_states() const noexcept { return queues_; }

    /// Attaches a telemetry session (non-owning; nullptr detaches). The
    /// episode loop then emits one `<backend>_epoch` row every
    /// `metrics_every` epochs, and the derived simulators arm their barrier
    /// spans on the session's tracer. Telemetry never consumes RNG draws:
    /// trajectories are bit-identical with it on or off.
    void set_telemetry(TelemetrySession* telemetry);
    TelemetrySession* telemetry() const noexcept { return telemetry_; }

protected:
    /// Validates and stores the shared epoch parameters; queues start empty.
    /// Throws std::invalid_argument on num_queues == 0, dt <= 0, horizon < 1.
    SystemBase(ArrivalProcess arrivals, double dt, int horizon, std::size_t num_queues);

    /// Restarts the epoch clock and samples λ_0 (one RNG draw). Derived
    /// resets draw their own initial queue states *before* calling this, to
    /// preserve the historical draw order.
    void reset_base(Rng& rng);

    /// Pins the λ path to a fixed state sequence (index per epoch), as in the
    /// Theorem 1 coupling; call after reset_base. Epochs beyond the sequence
    /// hold its last state. Throws on an empty sequence or out-of-range state.
    void condition_on(std::vector<std::size_t> lambda_states);

    /// Ends the current epoch: advances the clock and moves λ by its chain
    /// (one RNG draw) or by the conditioned replay (no draw).
    void advance_epoch(Rng& rng);

    /// The episode loop shared by every simulator: repeatedly invokes the
    /// per-epoch kernel `step_fn` (returning EpochStats) until done, and —
    /// when a telemetry session is attached — emits the per-epoch series
    /// row at the (serial) end of each epoch.
    template <class StepFn>
    EpisodeStats run_episode_loop(double discount, StepFn&& step_fn) {
        EpisodeAccumulator acc(discount,
                               static_cast<std::size_t>(horizon_ > t_ ? horizon_ - t_ : 0));
        while (!done()) {
            const int epoch = t_;
            const bool emit = telemetry_ != nullptr && telemetry_->metrics_enabled();
            // λ_t drives this epoch but the chain advances inside step_fn,
            // so read it before stepping (only when a row may be emitted).
            const double lambda_epoch = emit ? lambda_value() : 0.0;
            const EpochStats epoch_stats = step_fn();
            acc.add(epoch_stats);
            if (emit) {
                record_epoch_telemetry(epoch, lambda_epoch, epoch_stats);
            }
        }
        return acc.finish();
    }

    /// Derived hook: register backend metric ids / slot lanes on attach.
    virtual void on_telemetry_attached() {}
    /// Derived hook: append backend-specific fields (queue-length histogram
    /// summary, sojourn percentiles, barrier profile) to the epoch row.
    virtual void append_epoch_telemetry(MetricsRow& /*row*/) {}

    /// Serial barrier-phase bookkeeping behind the episode loop: merges the
    /// registry's slot lanes (fixed order), updates the base counters and
    /// gauges, and writes the epoch row every `metrics_every` epochs.
    /// `lambda_epoch` is λ_t as observed during the epoch (read pre-step).
    void record_epoch_telemetry(int epoch, double lambda_epoch, const EpochStats& stats);

    ArrivalProcess arrivals_;
    double dt_ = 1.0;
    int horizon_ = 1;
    std::vector<int> queues_;
    std::size_t lambda_state_ = 0;
    int t_ = 0;
    std::optional<std::vector<std::size_t>> conditioned_;

    TelemetrySession* telemetry_ = nullptr;
    const char* telemetry_series_ = "epoch"; ///< derived ctors override.

private:
    /// Registry ids of the base epoch metrics (valid while telemetry_ set).
    struct BaseMetricIds {
        MetricsRegistry::Id arrivals = 0;
        MetricsRegistry::Id dropped = 0;
        MetricsRegistry::Id served = 0;
        MetricsRegistry::Id lambda = 0;
        MetricsRegistry::Id qlen_mean = 0;
        MetricsRegistry::Id utilization = 0;
    };

    BaseMetricIds metric_ids_;
    MetricsRow telemetry_row_;
    std::uint64_t episodes_started_ = 0; ///< row "episode" field.
};

} // namespace mflb
