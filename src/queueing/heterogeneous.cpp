#include "queueing/heterogeneous.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

namespace {
/// Uniformly samples one index among those minimizing `score`.
int argmin_with_uniform_ties(std::span<const double> score, Rng& rng) {
    double best = score[0];
    for (double s : score) {
        best = std::min(best, s);
    }
    int ties = 0;
    for (double s : score) {
        ties += (s == best) ? 1 : 0;
    }
    std::uint64_t pick = rng.uniform_below(static_cast<std::uint64_t>(ties));
    for (std::size_t i = 0; i < score.size(); ++i) {
        if (score[i] == best) {
            if (pick == 0) {
                return static_cast<int>(i);
            }
            --pick;
        }
    }
    return 0;
}
} // namespace

int HeteroJsqPolicy::choose(std::span<const int> states, std::span<const double> /*rates*/,
                            Rng& rng) const {
    std::vector<double> score(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        score[i] = static_cast<double>(states[i]);
    }
    return argmin_with_uniform_ties(score, rng);
}

int HeteroSedPolicy::choose(std::span<const int> states, std::span<const double> rates,
                            Rng& rng) const {
    std::vector<double> score(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        score[i] = (static_cast<double>(states[i]) + 1.0) / rates[i];
    }
    return argmin_with_uniform_ties(score, rng);
}

int HeteroRndPolicy::choose(std::span<const int> states, std::span<const double> /*rates*/,
                            Rng& rng) const {
    return static_cast<int>(rng.uniform_below(states.size()));
}

HeterogeneousSystem::HeterogeneousSystem(HeterogeneousConfig config)
    : config_(std::move(config)) {
    if (config_.service_rates.empty()) {
        throw std::invalid_argument("HeterogeneousSystem: need at least one queue");
    }
    for (double rate : config_.service_rates) {
        if (rate <= 0.0) {
            throw std::invalid_argument("HeterogeneousSystem: service rates must be positive");
        }
    }
    if (config_.buffer < 1 || config_.d < 1 || config_.horizon < 1) {
        throw std::invalid_argument("HeterogeneousSystem: bad configuration");
    }
    queues_.assign(config_.service_rates.size(), 0);
}

void HeterogeneousSystem::reset(Rng& rng) {
    std::fill(queues_.begin(), queues_.end(), 0);
    lambda_state_ = config_.arrivals.sample_initial(rng);
    t_ = 0;
    length_sum_ = 0.0;
    total_drops_ = 0;
}

double HeterogeneousSystem::step(const HeteroClientPolicy& policy, Rng& rng) {
    if (done()) {
        throw std::logic_error("HeterogeneousSystem::step: episode finished");
    }
    const std::size_t m = queues_.size();
    const double lambda = config_.arrivals.level(lambda_state_);

    // Route every client on the stale snapshot.
    std::vector<std::uint64_t> counts(m, 0);
    std::vector<int> sampled(static_cast<std::size_t>(config_.d));
    std::vector<int> states(static_cast<std::size_t>(config_.d));
    std::vector<double> rates(static_cast<std::size_t>(config_.d));
    for (std::uint64_t i = 0; i < config_.num_clients; ++i) {
        for (int k = 0; k < config_.d; ++k) {
            const auto j = static_cast<std::size_t>(rng.uniform_below(m));
            sampled[static_cast<std::size_t>(k)] = static_cast<int>(j);
            states[static_cast<std::size_t>(k)] = queues_[j];
            rates[static_cast<std::size_t>(k)] = config_.service_rates[j];
        }
        const int u = policy.choose(states, rates, rng);
        ++counts[static_cast<std::size_t>(sampled[static_cast<std::size_t>(u)])];
    }

    // Simulate all queues at their frozen arrival rates.
    const double scale =
        static_cast<double>(m) * lambda / static_cast<double>(config_.num_clients);
    std::uint64_t drops = 0;
    double area = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        const QueueEpochResult r =
            simulate_queue_epoch(queues_[j], scale * static_cast<double>(counts[j]),
                                 config_.service_rates[j], config_.buffer, config_.dt, rng);
        queues_[j] = r.final_state;
        drops += r.drops;
        area += r.queue_length_area;
    }

    total_drops_ += drops;
    length_sum_ += area / (static_cast<double>(m) * config_.dt);
    ++t_;
    lambda_state_ = config_.arrivals.step(lambda_state_, rng);
    return static_cast<double>(drops) / static_cast<double>(m);
}

HeterogeneousEpisodeStats HeterogeneousSystem::run_episode(const HeteroClientPolicy& policy,
                                                           Rng& rng) {
    HeterogeneousEpisodeStats stats;
    while (!done()) {
        stats.total_drops_per_queue += step(policy, rng);
    }
    stats.dropped_packets = total_drops_;
    stats.mean_queue_length = t_ > 0 ? length_sum_ / static_cast<double>(t_) : 0.0;
    return stats;
}

} // namespace mflb
