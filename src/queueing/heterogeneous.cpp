#include "queueing/heterogeneous.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

namespace {
/// Uniformly samples one index among those minimizing `score(i)`, i in
/// [0, n). Computes scores on the fly (no per-call buffer): the spans are
/// tiny (d entries) and this runs once per client per epoch.
template <class ScoreFn>
int argmin_with_uniform_ties(std::size_t n, ScoreFn&& score, Rng& rng) {
    double best = score(0);
    for (std::size_t i = 1; i < n; ++i) {
        best = std::min(best, score(i));
    }
    int ties = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ties += (score(i) == best) ? 1 : 0;
    }
    std::uint64_t pick = rng.uniform_below(static_cast<std::uint64_t>(ties));
    for (std::size_t i = 0; i < n; ++i) {
        if (score(i) == best) {
            if (pick == 0) {
                return static_cast<int>(i);
            }
            --pick;
        }
    }
    return 0;
}
} // namespace

int HeteroJsqPolicy::choose(std::span<const int> states, std::span<const double> /*rates*/,
                            Rng& rng) const {
    return argmin_with_uniform_ties(
        states.size(), [&](std::size_t i) { return static_cast<double>(states[i]); }, rng);
}

int HeteroSedPolicy::choose(std::span<const int> states, std::span<const double> rates,
                            Rng& rng) const {
    return argmin_with_uniform_ties(
        states.size(),
        [&](std::size_t i) { return (static_cast<double>(states[i]) + 1.0) / rates[i]; }, rng);
}

int HeteroRndPolicy::choose(std::span<const int> states, std::span<const double> /*rates*/,
                            Rng& rng) const {
    return static_cast<int>(rng.uniform_below(states.size()));
}

HeterogeneousSystem::HeterogeneousSystem(HeterogeneousConfig config)
    : SystemBase(config.arrivals, config.dt, config.horizon, config.service_rates.size()),
      config_(std::move(config)) {
    for (double rate : config_.service_rates) {
        if (rate <= 0.0) {
            throw std::invalid_argument("HeterogeneousSystem: service rates must be positive");
        }
    }
    if (config_.buffer < 1 || config_.d < 1) {
        throw std::invalid_argument("HeterogeneousSystem: bad configuration");
    }
    counts_.assign(config_.service_rates.size(), 0);
    sampled_.assign(static_cast<std::size_t>(config_.d), 0);
    states_.assign(static_cast<std::size_t>(config_.d), 0);
    rates_.assign(static_cast<std::size_t>(config_.d), 0.0);
}

void HeterogeneousSystem::reset(Rng& rng) {
    std::fill(queues_.begin(), queues_.end(), 0);
    reset_base(rng);
}

EpochStats HeterogeneousSystem::step(const HeteroClientPolicy& policy, Rng& rng) {
    if (done()) {
        throw std::logic_error("HeterogeneousSystem::step: episode finished");
    }
    const std::size_t m = queues_.size();
    const double lambda = lambda_value();

    // Route every client on the stale snapshot.
    std::fill(counts_.begin(), counts_.end(), 0);
    for (std::uint64_t i = 0; i < config_.num_clients; ++i) {
        for (int k = 0; k < config_.d; ++k) {
            const auto j = static_cast<std::size_t>(rng.uniform_below(m));
            sampled_[static_cast<std::size_t>(k)] = static_cast<int>(j);
            states_[static_cast<std::size_t>(k)] = queues_[j];
            rates_[static_cast<std::size_t>(k)] = config_.service_rates[j];
        }
        const int u = policy.choose(states_, rates_, rng);
        ++counts_[static_cast<std::size_t>(sampled_[static_cast<std::size_t>(u)])];
    }

    // Simulate all queues at their frozen arrival rates.
    const double scale =
        static_cast<double>(m) * lambda / static_cast<double>(config_.num_clients);
    EpochStats stats;
    double area = 0.0;
    double busy = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        const QueueEpochResult r =
            simulate_queue_epoch(queues_[j], scale * static_cast<double>(counts_[j]),
                                 config_.service_rates[j], config_.buffer, config_.dt, rng);
        queues_[j] = r.final_state;
        stats.dropped_packets += r.drops;
        stats.accepted_packets += r.arrivals;
        stats.served_packets += r.services;
        area += r.queue_length_area;
        busy += r.busy_time;
    }

    const double m_dt = static_cast<double>(m) * config_.dt;
    stats.drops_per_queue =
        static_cast<double>(stats.dropped_packets) / static_cast<double>(m);
    stats.mean_queue_length = area / m_dt;
    stats.server_utilization = busy / m_dt;
    advance_epoch(rng);
    return stats;
}

HeterogeneousEpisodeStats HeterogeneousSystem::run_episode(const HeteroClientPolicy& policy,
                                                           Rng& rng) {
    return run_episode_loop(/*discount=*/1.0, [&] { return step(policy, rng); });
}

} // namespace mflb
