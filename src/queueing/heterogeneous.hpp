/// \file heterogeneous.hpp
/// Heterogeneous-server extension sketched in the paper's discussion
/// (Section 5): servers keep finite buffers but differ in service rate, and
/// clients may exploit the rates via Shortest-Expected-Delay, SED(d), which
/// routes to the sampled queue minimizing (z_j + 1) / α_j. Homogeneous JSQ(d)
/// and RND are included for comparison. This module simulates clients
/// literally (per-client), since destination laws now depend on the joint
/// (state, rate) of each sampled queue.
///
/// Built on `SystemBase` (λ-chain, episode loop, stats accumulation); only
/// the per-epoch routing kernel lives here, and its per-step buffers are
/// preallocated so stepping never touches the heap.
#pragma once

#include "field/arrival_process.hpp"
#include "field/transition.hpp"
#include "queueing/gillespie.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mflb {

/// Client-side routing rule over the d sampled (state, service-rate) pairs.
class HeteroClientPolicy {
public:
    virtual ~HeteroClientPolicy() = default;
    /// Returns the index in [0, d) of the chosen sampled queue.
    virtual int choose(std::span<const int> states, std::span<const double> rates,
                       Rng& rng) const = 0;
    virtual std::string name() const = 0;
};

/// JSQ(d): pick the sampled queue with the fewest jobs (uniform ties).
class HeteroJsqPolicy final : public HeteroClientPolicy {
public:
    int choose(std::span<const int> states, std::span<const double> rates,
               Rng& rng) const override;
    std::string name() const override { return "JSQ(d)"; }
};

/// SED(d): pick argmin (z + 1) / α (uniform ties).
class HeteroSedPolicy final : public HeteroClientPolicy {
public:
    int choose(std::span<const int> states, std::span<const double> rates,
               Rng& rng) const override;
    std::string name() const override { return "SED(d)"; }
};

/// RND: uniform among the d sampled queues.
class HeteroRndPolicy final : public HeteroClientPolicy {
public:
    int choose(std::span<const int> states, std::span<const double> rates,
               Rng& rng) const override;
    std::string name() const override { return "RND"; }
};

/// Configuration of the heterogeneous system.
struct HeterogeneousConfig {
    int buffer = 5;
    std::vector<double> service_rates; ///< α_j per queue (size M).
    int d = 2;
    double dt = 1.0;
    ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    std::uint64_t num_clients = 10000;
    int horizon = 100;
};

/// Episode outcome for the heterogeneous system — the shared episode summary
/// (discounting is not applied here: discounted_return = -total drops).
using HeterogeneousEpisodeStats = EpisodeStats;

/// Finite heterogeneous system with stale synchronized snapshots, mirroring
/// the homogeneous FiniteSystem but with per-queue service rates.
class HeterogeneousSystem : public SystemBase {
public:
    explicit HeterogeneousSystem(HeterogeneousConfig config);

    const HeterogeneousConfig& config() const noexcept { return config_; }
    void reset(Rng& rng);

    /// One synchronized epoch under the given client rule.
    EpochStats step(const HeteroClientPolicy& policy, Rng& rng);
    HeterogeneousEpisodeStats run_episode(const HeteroClientPolicy& policy, Rng& rng);

private:
    HeterogeneousConfig config_;
    // Per-step buffers, preallocated (see file comment).
    std::vector<std::uint64_t> counts_;
    std::vector<int> sampled_;
    std::vector<int> states_;
    std::vector<double> rates_;
};

} // namespace mflb
