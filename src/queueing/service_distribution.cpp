#include "queueing/service_distribution.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace mflb {
namespace {

/// Raw k-th moment of Pareto(alpha) truncated to [low, high], normalizer
/// trunc = 1 - (low/high)^alpha:
///     E[X^k] = alpha low^alpha / trunc * (low^(k-alpha) - high^(k-alpha)) / (alpha - k),
/// with the log-form limit when alpha == k.
double bounded_pareto_moment(double low, double high, double alpha, double trunc, int k) {
    const double kk = static_cast<double>(k);
    if (std::abs(alpha - kk) < 1e-12) {
        return alpha * std::pow(low, kk) / trunc * std::log(high / low);
    }
    const double lead = alpha * std::pow(low, alpha) / trunc;
    return lead * (std::pow(low, kk - alpha) - std::pow(high, kk - alpha)) / (alpha - kk);
}

} // namespace

std::string_view service_dist_name(ServiceDistKind kind) noexcept {
    switch (kind) {
    case ServiceDistKind::Exponential:
        return "exponential";
    case ServiceDistKind::Deterministic:
        return "deterministic";
    case ServiceDistKind::HyperExp:
        return "hyperexp";
    case ServiceDistKind::BoundedPareto:
        return "pareto";
    }
    return "exponential";
}

ServiceDistKind parse_service_dist(std::string_view name) {
    if (name == "exponential" || name == "exp" || name == "markov") {
        return ServiceDistKind::Exponential;
    }
    if (name == "deterministic" || name == "det") {
        return ServiceDistKind::Deterministic;
    }
    if (name == "hyperexp" || name == "h2") {
        return ServiceDistKind::HyperExp;
    }
    if (name == "pareto" || name == "bounded-pareto") {
        return ServiceDistKind::BoundedPareto;
    }
    throw std::invalid_argument("unknown service distribution: " + std::string(name) +
                                " (expected exponential|deterministic|hyperexp|pareto)");
}

ServiceDistribution::ServiceDistribution(const ServiceConfig& config, double rate)
    : kind_(config.kind) {
    if (!(rate > 0.0)) {
        throw std::invalid_argument("ServiceDistribution: rate must be > 0");
    }
    mean_ = 1.0 / rate;
    rate_ = rate;
    switch (kind_) {
    case ServiceDistKind::Exponential:
        second_moment_ = 2.0 / (rate * rate);
        break;
    case ServiceDistKind::Deterministic:
        second_moment_ = mean_ * mean_;
        break;
    case ServiceDistKind::HyperExp: {
        const double c2 = config.hyper_scv;
        if (!(c2 > 1.0)) {
            throw std::invalid_argument("ServiceDistribution: hyper_scv must be > 1");
        }
        // Balanced-mean H2: each phase carries half the mean. Solving
        // scv == c2 gives the phase split below (standard H2 fit).
        const double s = std::sqrt((c2 - 1.0) / (c2 + 1.0));
        p_ = 0.5 * (1.0 + s);
        r1_ = 2.0 * p_ * rate;
        r2_ = 2.0 * (1.0 - p_) * rate;
        second_moment_ = 2.0 * p_ / (r1_ * r1_) + 2.0 * (1.0 - p_) / (r2_ * r2_);
        break;
    }
    case ServiceDistKind::BoundedPareto: {
        alpha_ = config.pareto_alpha;
        const double cap = config.pareto_cap;
        if (!(alpha_ > 0.0)) {
            throw std::invalid_argument("ServiceDistribution: pareto_alpha must be > 0");
        }
        if (!(cap > 1.0)) {
            throw std::invalid_argument("ServiceDistribution: pareto_cap must be > 1");
        }
        // Fit the unit-low law on [1, cap], then rescale so the mean lands
        // on 1/rate — the truncated moments are degree-homogeneous in L.
        const double unit_trunc = 1.0 - std::pow(cap, -alpha_);
        const double unit_mean = bounded_pareto_moment(1.0, cap, alpha_, unit_trunc, 1);
        low_ = mean_ / unit_mean;
        high_ = cap * low_;
        trunc_ = unit_trunc;
        second_moment_ = bounded_pareto_moment(low_, high_, alpha_, trunc_, 2);
        break;
    }
    }
}

double ServiceDistribution::cdf(double t) const noexcept {
    if (t <= 0.0) {
        return 0.0;
    }
    switch (kind_) {
    case ServiceDistKind::Exponential:
        return 1.0 - std::exp(-rate_ * t);
    case ServiceDistKind::Deterministic:
        return t >= mean_ ? 1.0 : 0.0;
    case ServiceDistKind::HyperExp:
        return p_ * (1.0 - std::exp(-r1_ * t)) + (1.0 - p_) * (1.0 - std::exp(-r2_ * t));
    case ServiceDistKind::BoundedPareto:
        if (t <= low_) {
            return 0.0;
        }
        if (t >= high_) {
            return 1.0;
        }
        return (1.0 - std::pow(low_ / t, alpha_)) / trunc_;
    }
    return 0.0;
}

double ServiceDistribution::sample(Rng& rng) const noexcept {
    switch (kind_) {
    case ServiceDistKind::Exponential:
        // Must stay exactly Rng::exponential: the golden-trajectory tests pin
        // default-configured DES runs bit for bit through this call.
        return rng.exponential(rate_);
    case ServiceDistKind::Deterministic:
        return mean_;
    case ServiceDistKind::HyperExp: {
        // Two draws always (phase pick + variate) for draw-count determinism.
        const bool phase1 = rng.uniform() < p_;
        const double u = 1.0 - rng.uniform();
        return -std::log(u) / (phase1 ? r1_ : r2_);
    }
    case ServiceDistKind::BoundedPareto: {
        // Inverse CDF of the truncated power law; u in [0,1) maps to [L, H).
        const double u = rng.uniform();
        return low_ * std::pow(1.0 - u * trunc_, -1.0 / alpha_);
    }
    }
    return mean_;
}

double mg1_mean_sojourn(double arrival_rate, const ServiceDistribution& service) {
    const double rho = arrival_rate * service.mean();
    if (!(arrival_rate > 0.0) || !(rho < 1.0)) {
        throw std::invalid_argument("mg1_mean_sojourn: need 0 < lambda*E[S] < 1");
    }
    return service.mean() + arrival_rate * service.second_moment() / (2.0 * (1.0 - rho));
}

} // namespace mflb
