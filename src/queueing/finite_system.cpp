#include "queueing/finite_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mflb {

FiniteSystem::FiniteSystem(FiniteSystemConfig config)
    : SystemBase(config.arrivals, config.dt, config.horizon, config.num_queues),
      config_(std::move(config)), space_(config_.queue.num_states(), config_.d),
      router_(config_.router, config_.num_queues,
              static_cast<std::size_t>(config_.queue.num_states()), config_.dt),
      service_(config_.service, config_.queue.service_rate) {
    if (config_.num_clients == 0 && config_.client_model != ClientModel::InfiniteClients) {
        throw std::invalid_argument("FiniteSystem: need at least one client");
    }
    if (!config_.server_speeds.empty()) {
        if (config_.server_speeds.size() != config_.num_queues) {
            throw std::invalid_argument("FiniteSystem: server_speeds size mismatch");
        }
        for (const double s : config_.server_speeds) {
            if (!(s > 0.0)) {
                throw std::invalid_argument("FiniteSystem: server speeds must be > 0");
            }
        }
    }
    if (config_.nu0.empty()) {
        config_.nu0.assign(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
        config_.nu0[0] = 1.0;
    }
    if (config_.nu0.size() != static_cast<std::size_t>(config_.queue.num_states())) {
        throw std::invalid_argument("FiniteSystem: nu0 size mismatch");
    }
    const auto num_z = static_cast<std::size_t>(config_.queue.num_states());
    const auto d = static_cast<std::size_t>(config_.d);
    const std::size_t m = config_.num_queues;
    ws_.hist.assign(num_z, 0.0);
    ws_.g.assign(d * num_z, 0.0);
    ws_.tuple.assign(d, 0);
    ws_.suffix.assign(d + 1, 1.0);
    ws_.dest_p.assign(m, 0.0);
    ws_.counts.assign(m, 0);
    ws_.sampled.assign(d, 0);
    ws_.states.assign(d, 0);
    ws_.rates.assign(m, 0.0);
    ws_.flow.inflow_by_state.assign(num_z, 0.0);
    ws_.flow.rate_by_state.assign(num_z, 0.0);
    if (router_.active()) {
        ws_.weights.assign(m, 0.0);
    }
    if (general_service()) {
        next_completion_.assign(m, std::numeric_limits<double>::infinity());
    }
    telemetry_series_ = "finite_epoch";
    if (config_.telemetry != nullptr) {
        set_telemetry(config_.telemetry);
    }
}

void FiniteSystem::append_epoch_telemetry(MetricsRow& row) {
    const int full_state = config_.queue.num_states() - 1;
    std::size_t empty = 0;
    std::size_t full = 0;
    int max_state = 0;
    for (const int z : queues_) {
        empty += z == 0 ? 1 : 0;
        full += z >= full_state ? 1 : 0;
        max_state = std::max(max_state, z);
    }
    const double inv_m = 1.0 / static_cast<double>(queues_.size());
    row.push("qlen_empty_frac", static_cast<double>(empty) * inv_m);
    row.push("qlen_full_frac", static_cast<double>(full) * inv_m);
    row.push_int("qlen_max", max_state);
}

void FiniteSystem::reset(Rng& rng) {
    for (int& z : queues_) {
        z = static_cast<int>(rng.categorical(config_.nu0));
    }
    reset_base(rng);
    clock_ = 0.0;
    router_.reset();
    if (general_service()) {
        // Initially busy queues have a job in service from time zero whose
        // completion clock is carried across epochs by the general kernel.
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            next_completion_[j] = queues_[j] > 0
                                      ? service_.sample(rng) / speed(j)
                                      : std::numeric_limits<double>::infinity();
        }
    }
    if (config_.track_sojourn) {
        jobs_.clear();
        jobs_.reserve(queues_.size());
        for (int z : queues_) {
            JobTimestamps stamps(config_.queue.buffer);
            // Jobs present at t = 0 get timestamp 0 (their waiting before
            // the simulation started is unknown and counted as zero).
            for (int k = 0; k < z; ++k) {
                stamps.push(0.0);
            }
            jobs_.push_back(std::move(stamps));
        }
    }
}

void FiniteSystem::reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng) {
    reset(rng);
    condition_on(std::move(lambda_states));
}

void FiniteSystem::fill_empirical(std::vector<double>& hist) const {
    std::fill(hist.begin(), hist.end(), 0.0);
    const double weight = 1.0 / static_cast<double>(queues_.size());
    for (int z : queues_) {
        hist[static_cast<std::size_t>(z)] += weight;
    }
}

std::vector<double> FiniteSystem::empirical_distribution() const {
    std::vector<double> h(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
    fill_empirical(h);
    return h;
}

std::vector<double> FiniteSystem::observed_distribution(Rng& rng) const {
    if (config_.histogram_sample_size == 0) {
        return empirical_distribution();
    }
    std::vector<double> h(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
    const double weight = 1.0 / static_cast<double>(config_.histogram_sample_size);
    for (std::size_t k = 0; k < config_.histogram_sample_size; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_below(queues_.size()));
        h[static_cast<std::size_t>(queues_[j])] += weight;
    }
    return h;
}

void FiniteSystem::destination_probabilities(const DecisionRule& h) const {
    // p(j) = (1/M) Σ_k g(k, z_j): the exact law of one client's destination
    // given the snapshot, computed by the routing helper shared with both
    // event-driven backends (identical arithmetic — goldens stay bit-exact).
    fill_empirical(ws_.hist);
    compute_destination_law_into(queues_, ws_.hist, h, ws_.tuple, ws_.suffix, ws_.g,
                                 ws_.dest_p);
}

void FiniteSystem::compute_queue_rates_into(const DecisionRule& h, Rng& rng) const {
    const double lambda = lambda_value();
    const auto m = static_cast<double>(queues_.size());
    std::vector<double>& rates = ws_.rates;

    switch (config_.client_model) {
    case ClientModel::PerClient: {
        // Literal eq. (5): every client samples d queues and one choice —
        // the draw loop shared with both event-driven backends.
        sample_per_client_counts(queues_, h, config_.num_clients, rng, ws_.sampled,
                                 ws_.states, ws_.counts);
        const double scale = m * lambda / static_cast<double>(config_.num_clients);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = scale * static_cast<double>(ws_.counts[j]);
        }
        return;
    }
    case ClientModel::Aggregated: {
        // Client destinations are i.i.d. given the snapshot, so per-queue
        // counts are exactly Multinomial(N, p).
        destination_probabilities(h);
        rng.multinomial(config_.num_clients, ws_.dest_p, ws_.counts);
        const double scale = m * lambda / static_cast<double>(config_.num_clients);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = scale * static_cast<double>(ws_.counts[j]);
        }
        return;
    }
    case ClientModel::InfiniteClients: {
        // N → ∞: rates collapse to λ_t(H^M, z_j), Section 2.2 / Theorem 1.
        fill_empirical(ws_.hist);
        compute_arrival_flow_into(ws_.hist, h, lambda, ws_.tuple, ws_.flow);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = ws_.flow.rate_by_state[static_cast<std::size_t>(queues_[j])];
        }
        return;
    }
    }
}

std::vector<double> FiniteSystem::compute_queue_rates(const DecisionRule& h, Rng& rng) const {
    compute_queue_rates_into(h, rng);
    return ws_.rates;
}

void FiniteSystem::compute_router_rates_into() {
    // Router weight law → frozen per-queue Poisson rates M·λ_t·w_j/Σw: the
    // exact rate realization of "each arriving job lands on queue j with
    // probability w_j/Σw" for the aggregated stream of rate M·λ_t.
    router_.epoch_weights(queues_, time(), ws_.weights);
    double total = 0.0;
    for (const double w : ws_.weights) {
        total += w;
    }
    const double scale =
        total > 0.0 ? static_cast<double>(queues_.size()) * lambda_value() / total : 0.0;
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        ws_.rates[j] = scale * ws_.weights[j];
    }
}

EpochStats FiniteSystem::simulate_epoch_from_rates(Rng& rng) {
    const std::vector<double>& rates = ws_.rates;
    const bool general = general_service();

    EpochStats stats;
    double area = 0.0;
    double busy = 0.0;
    double sojourn_sum = 0.0;
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        QueueEpochResult r;
        if (general) {
            const SojournEpochResult s = simulate_queue_epoch_general(
                queues_[j], rates[j], service_, speed(j), config_.queue.buffer, clock_,
                config_.dt, next_completion_[j], rng,
                config_.track_sojourn ? &jobs_[j] : nullptr);
            r = s.queue;
            sojourn_sum += s.sojourn.mean() * static_cast<double>(s.sojourn.count());
            stats.completed_jobs += s.sojourn.count();
        } else if (config_.track_sojourn) {
            const SojournEpochResult s = simulate_queue_epoch_sojourn(
                jobs_[j], clock_, rates[j], config_.queue.service_rate, config_.queue.buffer,
                config_.dt, rng);
            r = s.queue;
            sojourn_sum += s.sojourn.mean() * static_cast<double>(s.sojourn.count());
            stats.completed_jobs += s.sojourn.count();
        } else {
            r = simulate_queue_epoch(queues_[j], rates[j], config_.queue.service_rate,
                                     config_.queue.buffer, config_.dt, rng);
        }
        queues_[j] = r.final_state;
        stats.dropped_packets += r.drops;
        stats.accepted_packets += r.arrivals;
        stats.served_packets += r.services;
        area += r.queue_length_area;
        busy += r.busy_time;
    }
    if (stats.completed_jobs > 0) {
        stats.mean_sojourn = sojourn_sum / static_cast<double>(stats.completed_jobs);
    }
    clock_ += config_.dt;
    const double m_dt = static_cast<double>(queues_.size()) * config_.dt;
    stats.drops_per_queue =
        static_cast<double>(stats.dropped_packets) / static_cast<double>(queues_.size());
    stats.mean_queue_length = area / m_dt;
    stats.server_utilization = busy / m_dt;

    advance_epoch(rng);
    return stats;
}

EpochStats FiniteSystem::step_with_rule(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("FiniteSystem::step: episode already finished");
    }
    if (!(h.space() == space_)) {
        throw std::invalid_argument("FiniteSystem::step: decision rule on wrong tuple space");
    }
    trace::Tracer* tracer = session_tracer(telemetry_);
    {
        trace::ScopedSpan span(tracer, "destination_law");
        compute_queue_rates_into(h, rng);
    }
    trace::ScopedSpan span(tracer, "queue_advance");
    return simulate_epoch_from_rates(rng);
}

EpochStats FiniteSystem::step_router(Rng& rng) {
    if (!router_.active()) {
        throw std::logic_error("FiniteSystem::step_router: no classical router configured");
    }
    if (done()) {
        throw std::logic_error("FiniteSystem::step: episode already finished");
    }
    compute_router_rates_into();
    return simulate_epoch_from_rates(rng);
}

EpochStats FiniteSystem::step(const UpperLevelPolicy& policy, Rng& rng) {
    if (router_.active()) {
        return step_router(rng);
    }
    DecisionRule h = [&] {
        trace::ScopedSpan span(session_tracer(telemetry_), "policy_query");
        return policy.decide(observed_distribution(rng), lambda_state(), rng);
    }();
    return step_with_rule(h, rng);
}

EpisodeStats FiniteSystem::run_episode(const UpperLevelPolicy& policy, Rng& rng) {
    return run_episode_loop(config_.discount, [&] { return step(policy, rng); });
}

EpisodeStats FiniteSystem::run_episode(Rng& rng) {
    return run_episode_loop(config_.discount, [&] { return step_router(rng); });
}

} // namespace mflb
