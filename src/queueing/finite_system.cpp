#include "queueing/finite_system.hpp"

#include "field/arrival_flow.hpp"

#include <cmath>
#include <stdexcept>

namespace mflb {

FiniteSystem::FiniteSystem(FiniteSystemConfig config)
    : config_(std::move(config)), space_(config_.queue.num_states(), config_.d) {
    if (config_.num_queues == 0) {
        throw std::invalid_argument("FiniteSystem: need at least one queue");
    }
    if (config_.num_clients == 0 && config_.client_model != ClientModel::InfiniteClients) {
        throw std::invalid_argument("FiniteSystem: need at least one client");
    }
    if (config_.horizon <= 0) {
        throw std::invalid_argument("FiniteSystem: horizon must be positive");
    }
    if (config_.nu0.empty()) {
        config_.nu0.assign(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
        config_.nu0[0] = 1.0;
    }
    if (config_.nu0.size() != static_cast<std::size_t>(config_.queue.num_states())) {
        throw std::invalid_argument("FiniteSystem: nu0 size mismatch");
    }
    queues_.assign(config_.num_queues, 0);
}

void FiniteSystem::reset(Rng& rng) {
    for (int& z : queues_) {
        z = static_cast<int>(rng.categorical(config_.nu0));
    }
    lambda_state_ = config_.arrivals.sample_initial(rng);
    t_ = 0;
    clock_ = 0.0;
    conditioned_.reset();
    if (config_.track_sojourn) {
        jobs_.clear();
        jobs_.reserve(queues_.size());
        for (int z : queues_) {
            JobTimestamps stamps(config_.queue.buffer);
            // Jobs present at t = 0 get timestamp 0 (their waiting before
            // the simulation started is unknown and counted as zero).
            for (int k = 0; k < z; ++k) {
                stamps.push(0.0);
            }
            jobs_.push_back(std::move(stamps));
        }
    }
}

void FiniteSystem::reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng) {
    if (lambda_states.empty()) {
        throw std::invalid_argument("FiniteSystem: conditioned sequence must be non-empty");
    }
    reset(rng);
    t_ = 0;
    lambda_state_ = lambda_states.front();
    conditioned_ = std::move(lambda_states);
}

std::vector<double> FiniteSystem::empirical_distribution() const {
    std::vector<double> h(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
    const double weight = 1.0 / static_cast<double>(queues_.size());
    for (int z : queues_) {
        h[static_cast<std::size_t>(z)] += weight;
    }
    return h;
}

std::vector<double> FiniteSystem::observed_distribution(Rng& rng) const {
    if (config_.histogram_sample_size == 0) {
        return empirical_distribution();
    }
    std::vector<double> h(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
    const double weight = 1.0 / static_cast<double>(config_.histogram_sample_size);
    for (std::size_t k = 0; k < config_.histogram_sample_size; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_below(queues_.size()));
        h[static_cast<std::size_t>(queues_[j])] += weight;
    }
    return h;
}

std::vector<double> FiniteSystem::destination_probabilities(const DecisionRule& h) const {
    // p(j) = (1/M) Σ_k g(k, z_j), where g(k, z) is the mean routing
    // probability of coordinate k when it shows state z and the other d-1
    // sampled queues are drawn from the empirical histogram H. This is the
    // exact law of one client's destination given the snapshot.
    const auto num_z = static_cast<std::size_t>(config_.queue.num_states());
    const int d = config_.d;
    const std::vector<double> hist = empirical_distribution();

    // g[k * num_z + z]
    std::vector<double> g(static_cast<std::size_t>(d) * num_z, 0.0);
    std::vector<int> tuple(static_cast<std::size_t>(d));
    for (std::size_t idx = 0; idx < space_.size(); ++idx) {
        space_.decode(idx, tuple);
        // Per-coordinate leave-one-out weights Π_{i≠k} H(z̄_i), computed via
        // prefix/suffix products to stay O(d) per tuple.
        double prefix = 1.0;
        std::vector<double> suffix(static_cast<std::size_t>(d) + 1, 1.0);
        for (int k = d - 1; k >= 0; --k) {
            suffix[static_cast<std::size_t>(k)] =
                suffix[static_cast<std::size_t>(k) + 1] *
                hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
        for (int k = 0; k < d; ++k) {
            const double weight = prefix * suffix[static_cast<std::size_t>(k) + 1];
            if (weight > 0.0) {
                g[static_cast<std::size_t>(k) * num_z +
                  static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])] +=
                    weight * h.prob(idx, k);
            }
            prefix *= hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
    }

    const double inv_m = 1.0 / static_cast<double>(queues_.size());
    std::vector<double> p(queues_.size(), 0.0);
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        double total = 0.0;
        for (int k = 0; k < d; ++k) {
            total += g[static_cast<std::size_t>(k) * num_z + static_cast<std::size_t>(queues_[j])];
        }
        p[j] = inv_m * total;
    }
    return p;
}

std::vector<double> FiniteSystem::compute_queue_rates(const DecisionRule& h, Rng& rng) const {
    const double lambda = lambda_value();
    const auto m = static_cast<double>(queues_.size());
    std::vector<double> rates(queues_.size(), 0.0);

    switch (config_.client_model) {
    case ClientModel::PerClient: {
        // Literal eq. (5): every client samples d queues and one choice.
        std::vector<std::uint64_t> counts(queues_.size(), 0);
        std::vector<int> sampled(static_cast<std::size_t>(config_.d));
        std::vector<int> states(static_cast<std::size_t>(config_.d));
        for (std::uint64_t i = 0; i < config_.num_clients; ++i) {
            for (int k = 0; k < config_.d; ++k) {
                sampled[static_cast<std::size_t>(k)] =
                    static_cast<int>(rng.uniform_below(queues_.size()));
                states[static_cast<std::size_t>(k)] =
                    queues_[static_cast<std::size_t>(sampled[static_cast<std::size_t>(k)])];
            }
            const std::size_t row = space_.index_of(states);
            const std::size_t u = rng.categorical(h.row(row));
            ++counts[static_cast<std::size_t>(sampled[u])];
        }
        const double scale = m * lambda / static_cast<double>(config_.num_clients);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = scale * static_cast<double>(counts[j]);
        }
        return rates;
    }
    case ClientModel::Aggregated: {
        // Client destinations are i.i.d. given the snapshot, so per-queue
        // counts are exactly Multinomial(N, p).
        const std::vector<double> p = destination_probabilities(h);
        const std::vector<std::uint64_t> counts = rng.multinomial(config_.num_clients, p);
        const double scale = m * lambda / static_cast<double>(config_.num_clients);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = scale * static_cast<double>(counts[j]);
        }
        return rates;
    }
    case ClientModel::InfiniteClients: {
        // N → ∞: rates collapse to λ_t(H^M, z_j), Section 2.2 / Theorem 1.
        const ArrivalFlow flow = compute_arrival_flow(empirical_distribution(), h, lambda);
        for (std::size_t j = 0; j < queues_.size(); ++j) {
            rates[j] = flow.rate_by_state[static_cast<std::size_t>(queues_[j])];
        }
        return rates;
    }
    }
    return rates;
}

EpochStats FiniteSystem::step_with_rule(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("FiniteSystem::step: episode already finished");
    }
    if (!(h.space() == space_)) {
        throw std::invalid_argument("FiniteSystem::step: decision rule on wrong tuple space");
    }
    const std::vector<double> rates = compute_queue_rates(h, rng);

    EpochStats stats;
    double area = 0.0;
    double busy = 0.0;
    double sojourn_sum = 0.0;
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        QueueEpochResult r;
        if (config_.track_sojourn) {
            const SojournEpochResult s = simulate_queue_epoch_sojourn(
                jobs_[j], clock_, rates[j], config_.queue.service_rate, config_.queue.buffer,
                config_.dt, rng);
            r = s.queue;
            sojourn_sum += s.sojourn.mean() * static_cast<double>(s.sojourn.count());
            stats.completed_jobs += s.sojourn.count();
        } else {
            r = simulate_queue_epoch(queues_[j], rates[j], config_.queue.service_rate,
                                     config_.queue.buffer, config_.dt, rng);
        }
        queues_[j] = r.final_state;
        stats.dropped_packets += r.drops;
        stats.accepted_packets += r.arrivals;
        stats.served_packets += r.services;
        area += r.queue_length_area;
        busy += r.busy_time;
    }
    if (stats.completed_jobs > 0) {
        stats.mean_sojourn = sojourn_sum / static_cast<double>(stats.completed_jobs);
    }
    clock_ += config_.dt;
    const double m_dt = static_cast<double>(queues_.size()) * config_.dt;
    stats.drops_per_queue =
        static_cast<double>(stats.dropped_packets) / static_cast<double>(queues_.size());
    stats.mean_queue_length = area / m_dt;
    stats.server_utilization = busy / m_dt;

    ++t_;
    if (conditioned_) {
        const auto next_idx = static_cast<std::size_t>(t_);
        lambda_state_ = next_idx < conditioned_->size() ? (*conditioned_)[next_idx]
                                                        : conditioned_->back();
    } else {
        lambda_state_ = config_.arrivals.step(lambda_state_, rng);
    }
    return stats;
}

EpochStats FiniteSystem::step(const UpperLevelPolicy& policy, Rng& rng) {
    const DecisionRule h = policy.decide(observed_distribution(rng), lambda_state_, rng);
    return step_with_rule(h, rng);
}

EpisodeStats FiniteSystem::run_episode(const UpperLevelPolicy& policy, Rng& rng) {
    EpisodeStats stats;
    stats.drops_per_epoch.reserve(static_cast<std::size_t>(config_.horizon));
    double discount = 1.0;
    double length_sum = 0.0;
    double util_sum = 0.0;
    double sojourn_sum = 0.0;
    while (!done()) {
        const EpochStats epoch = step(policy, rng);
        stats.total_drops_per_queue += epoch.drops_per_queue;
        stats.discounted_return -= discount * epoch.drops_per_queue;
        stats.dropped_packets += epoch.dropped_packets;
        stats.accepted_packets += epoch.accepted_packets;
        stats.drops_per_epoch.push_back(epoch.drops_per_queue);
        length_sum += epoch.mean_queue_length;
        util_sum += epoch.server_utilization;
        sojourn_sum += epoch.mean_sojourn * static_cast<double>(epoch.completed_jobs);
        stats.completed_jobs += epoch.completed_jobs;
        discount *= config_.discount;
    }
    const auto epochs = static_cast<double>(stats.drops_per_epoch.size());
    if (epochs > 0) {
        stats.mean_queue_length = length_sum / epochs;
        stats.server_utilization = util_sum / epochs;
    }
    if (stats.completed_jobs > 0) {
        stats.mean_sojourn = sojourn_sum / static_cast<double>(stats.completed_jobs);
    }
    return stats;
}

} // namespace mflb
