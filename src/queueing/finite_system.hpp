/// \file finite_system.hpp
/// The finite N-client / M-queue system of Section 2.1, simulated exactly per
/// Algorithm 1 of the paper: at every decision epoch all clients observe the
/// same stale snapshot of queue states, each samples d queues uniformly at
/// random, routes its job stream according to the decision rule h_t produced
/// by the upper-level policy, and every queue then evolves as an independent
/// birth-death CTMC for Δt time units at the frozen arrival rate (5).
///
/// Three client models are provided:
///  - `PerClient`        — literal Algorithm 1, O(N) per epoch;
///  - `Aggregated`       — exact O(M·|Z|^{d-1} + M) reformulation: client
///    destinations are conditionally i.i.d. given the snapshot, so the
///    per-queue client counts are Multinomial(N, p) with p computed in
///    closed form. Statistically identical to PerClient (tested), but cost
///    is independent of N — this is how N = 10^6 runs are exact and fast;
///  - `InfiniteClients`  — the N → ∞ intermediate system of Section 2.2:
///    per-queue rates become the deterministic λ_t(H^M, z_j) of the proof of
///    Theorem 1, while queues remain stochastic.
///
/// Built on `SystemBase` (λ-chain, episode loop, stats accumulation); this
/// class contributes only the per-epoch routing/queue kernel. The kernel is
/// allocation-free in steady state: every per-step buffer (the g table,
/// tuple decode, prefix/suffix products, destination probabilities, client
/// counts, and rate vector) lives in a workspace sized at construction, so
/// `step_with_rule` performs zero heap allocations after the first step.
/// Consequence: a FiniteSystem instance must not be shared across threads
/// (the Monte Carlo harness gives each replication its own instance).
#pragma once

#include "field/arrival_flow.hpp"
#include "field/arrival_process.hpp"
#include "field/mfc_env.hpp"
#include "field/transition.hpp"
#include "queueing/gillespie.hpp"
#include "queueing/router.hpp"
#include "queueing/service_distribution.hpp"
#include "queueing/sojourn.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// How client routing decisions are realized each epoch.
enum class ClientModel {
    PerClient,       ///< sample x_i, u_i for every client i = 1..N.
    Aggregated,      ///< exact multinomial aggregation of client choices.
    InfiniteClients, ///< deterministic mean-field rates (N = ∞, M finite).
};

/// Which future event list powers the event-driven backends' hot loop. Both
/// produce the *exact same* event order (and hence bit-identical episodes):
/// the calendar queue keeps within-bucket events in (time, id) order, so the
/// pop sequence matches the heap's tie-broken total order event for event.
/// See des/calendar_queue.hpp; the epoch-synchronous backend ignores this.
enum class FelKind {
    Heap,     ///< indexed binary min-heap: O(log n) per operation.
    Calendar, ///< calendar queue: amortized O(1) schedule/pop/cancel.
};

/// Configuration of the finite system (defaults = Table 1).
struct FiniteSystemConfig {
    QueueParams queue{};        ///< B = 5, α = 1.
    int d = 2;                  ///< sampled queues per client.
    double dt = 1.0;            ///< synchronization delay Δt.
    ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    std::uint64_t num_clients = 10000; ///< N.
    std::size_t num_queues = 100;      ///< M.
    int horizon = 500;                 ///< T_e decision epochs.
    double discount = 0.99;            ///< γ for discounted returns.
    ClientModel client_model = ClientModel::Aggregated;
    std::vector<double> nu0;           ///< initial per-queue state law; empty = δ_0.
    /// Track exact per-job sojourn times (FIFO timestamps per queue).
    bool track_sojourn = false;
    /// Partial information (paper §2.1 remark): if > 0, the upper-level
    /// policy sees an *estimate* of H_t^M built from this many uniformly
    /// sampled queues instead of the exact histogram. 0 = exact.
    std::size_t histogram_sample_size = 0;
    /// Sharded event-driven backend (`ShardedDesSystem`) only: number of
    /// queue shards K (0 = min(8, num_queues)). Results are a function of
    /// (seed, shards); the other backends ignore it.
    std::size_t shards = 0;
    /// Sharded backend only: worker threads for the epoch-parallel phase
    /// (0 = all hardware threads). Never affects results, only wall clock.
    std::size_t threads = 0;
    /// Sharded backend only: overlapped epoch pipeline (eager reduction-tree
    /// folds, offloaded deterministic barrier compute, fused destination-law
    /// gathers). Bit-identical to the non-pipelined barrier for fixed
    /// (seed, shards) — the seam exists for A/B benching and bisection, not
    /// because results differ (`--pipeline {on,off}` CLI/bench flag).
    bool pipeline = true;
    /// Event-driven backends only: future-event-list implementation for the
    /// event loop. Both kinds pop events in the identical (time, id) order,
    /// so episodes are bit-identical; `Calendar` is amortized O(1) per event
    /// and the default, `Heap` is the O(log n) baseline (still fastest for
    /// tiny fleets). The epoch-synchronous backend ignores it.
    FelKind fel = FelKind::Calendar;
    /// Routing discipline. `Policy` (default) is the paper's decision-rule
    /// path; any classical kind makes the backends ignore the upper-level
    /// policy and route at the job-stream level (see queueing/router.hpp).
    RouterSpec router{};
    /// Service-time law, mean 1/queue.service_rate for every kind so the
    /// offered load is comparable across laws (queueing/service_distribution.hpp).
    ServiceConfig service{};
    /// Per-queue relative server speeds (heterogeneity): queue j serves at
    /// rate speed_j · α, i.e. its service times are sample / speed_j. Empty
    /// (default) = homogeneous; otherwise one positive entry per queue.
    std::vector<double> server_speeds;
    /// Optional telemetry session (non-owning; nullptr = fully disabled).
    /// Every backend constructed from this config attaches to it: the
    /// episode loop emits per-epoch series rows and the barrier phases emit
    /// tracer spans. See support/telemetry.hpp for the determinism contract.
    TelemetrySession* telemetry = nullptr;
};

/// Exact simulator of the finite (or infinite-client) queuing system.
class FiniteSystem : public SystemBase {
public:
    explicit FiniteSystem(FiniteSystemConfig config);

    const FiniteSystemConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }

    /// Draws initial queue states i.i.d. from ν_0 and samples λ_0.
    void reset(Rng& rng);
    /// Like reset but with a fixed λ-state sequence (Theorem 1 conditioning).
    void reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng);

    /// Empirical distribution H_t^M over Z, eq. (2).
    std::vector<double> empirical_distribution() const;

    /// The distribution shown to the upper-level policy: exact H_t^M, or an
    /// estimate from `histogram_sample_size` sampled queues (paper §2.1).
    std::vector<double> observed_distribution(Rng& rng) const;

    /// One decision epoch: query the policy on (H_t^M, λ_t), route clients,
    /// simulate all queues for Δt, advance λ. With a classical router
    /// configured the policy is ignored and this forwards to step_router.
    EpochStats step(const UpperLevelPolicy& policy, Rng& rng);
    /// Same with an explicit decision rule (skips the policy query).
    /// Allocation-free in steady state (see file comment).
    EpochStats step_with_rule(const DecisionRule& h, Rng& rng);
    /// One decision epoch under the configured classical router (no policy
    /// involved); requires `config().router.kind != RouterKind::Policy`.
    EpochStats step_router(Rng& rng);

    /// Runs a full episode from reset state; accumulates per-epoch stats.
    EpisodeStats run_episode(const UpperLevelPolicy& policy, Rng& rng);
    /// Router-only episode (requires a classical router configured).
    EpisodeStats run_episode(Rng& rng);

    /// Per-queue arrival rates computed for the *current* snapshot under `h`
    /// — exposed for tests validating eq. (5) and its aggregation.
    std::vector<double> compute_queue_rates(const DecisionRule& h, Rng& rng) const;

protected:
    /// Queue-length histogram summary of the current snapshot (empty/full
    /// fractions, max occupied state) — the finite backend's epoch-row extras.
    void append_epoch_telemetry(MetricsRow& row) override;

private:
    /// Reusable per-step buffers; sizes are fixed at construction so the
    /// step path never touches the heap. Mutable because the const
    /// rate-computation helpers (exposed for tests) share them; instances
    /// are single-threaded by contract.
    struct Workspace {
        std::vector<double> hist;          ///< H_t^M over Z.
        std::vector<double> g;             ///< g[k * |Z| + z] routing table.
        std::vector<int> tuple;            ///< tuple decode buffer (d).
        std::vector<double> suffix;        ///< suffix products (d + 1).
        std::vector<double> dest_p;        ///< per-queue destination law (M).
        std::vector<std::uint64_t> counts; ///< per-queue client counts (M).
        std::vector<int> sampled;          ///< per-client sampled queues (d).
        std::vector<int> states;           ///< their snapshot states (d).
        std::vector<double> rates;         ///< per-queue arrival rates (M).
        std::vector<double> weights;       ///< router weight law (M, router mode).
        ArrivalFlow flow;                  ///< InfiniteClients rate buffers.
    };

    void fill_empirical(std::vector<double>& hist) const;
    /// Fills ws_.dest_p with the exact per-client destination law.
    void destination_probabilities(const DecisionRule& h) const;
    /// Fills ws_.rates with the per-queue arrival rates of eq. (5).
    void compute_queue_rates_into(const DecisionRule& h, Rng& rng) const;
    /// Fills ws_.rates with M·λ_t·w_j/Σw from the router's weight law.
    void compute_router_rates_into();
    /// Shared epoch tail: per-queue kernels on ws_.rates + epoch accounting.
    EpochStats simulate_epoch_from_rates(Rng& rng);
    /// True when the general-service kernel must run (non-exponential law
    /// or heterogeneous speeds); the legacy exponential Gillespie kernels
    /// are kept for the default so goldens stay bit-identical.
    bool general_service() const noexcept {
        return config_.service.kind != ServiceDistKind::Exponential ||
               !config_.server_speeds.empty();
    }
    double speed(std::size_t j) const noexcept {
        return config_.server_speeds.empty() ? 1.0 : config_.server_speeds[j];
    }

    FiniteSystemConfig config_;
    TupleSpace space_;
    EpochRouter router_;
    ServiceDistribution service_;
    std::vector<JobTimestamps> jobs_; ///< per-queue FIFO timestamps (sojourn mode).
    /// General-service kernel state: absolute completion time of the job in
    /// service at queue j (+inf when idle), carried across epochs.
    std::vector<double> next_completion_;
    double clock_ = 0.0;              ///< absolute simulation time (sojourn mode).
    mutable Workspace ws_;
};

} // namespace mflb
