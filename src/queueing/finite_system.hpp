/// \file finite_system.hpp
/// The finite N-client / M-queue system of Section 2.1, simulated exactly per
/// Algorithm 1 of the paper: at every decision epoch all clients observe the
/// same stale snapshot of queue states, each samples d queues uniformly at
/// random, routes its job stream according to the decision rule h_t produced
/// by the upper-level policy, and every queue then evolves as an independent
/// birth-death CTMC for Δt time units at the frozen arrival rate (5).
///
/// Three client models are provided:
///  - `PerClient`        — literal Algorithm 1, O(N) per epoch;
///  - `Aggregated`       — exact O(M·|Z|^{d-1} + M) reformulation: client
///    destinations are conditionally i.i.d. given the snapshot, so the
///    per-queue client counts are Multinomial(N, p) with p computed in
///    closed form. Statistically identical to PerClient (tested), but cost
///    is independent of N — this is how N = 10^6 runs are exact and fast;
///  - `InfiniteClients`  — the N → ∞ intermediate system of Section 2.2:
///    per-queue rates become the deterministic λ_t(H^M, z_j) of the proof of
///    Theorem 1, while queues remain stochastic.
#pragma once

#include "field/arrival_process.hpp"
#include "field/mfc_env.hpp"
#include "field/transition.hpp"
#include "queueing/gillespie.hpp"
#include "queueing/sojourn.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace mflb {

/// How client routing decisions are realized each epoch.
enum class ClientModel {
    PerClient,       ///< sample x_i, u_i for every client i = 1..N.
    Aggregated,      ///< exact multinomial aggregation of client choices.
    InfiniteClients, ///< deterministic mean-field rates (N = ∞, M finite).
};

/// Configuration of the finite system (defaults = Table 1).
struct FiniteSystemConfig {
    QueueParams queue{};        ///< B = 5, α = 1.
    int d = 2;                  ///< sampled queues per client.
    double dt = 1.0;            ///< synchronization delay Δt.
    ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    std::uint64_t num_clients = 10000; ///< N.
    std::size_t num_queues = 100;      ///< M.
    int horizon = 500;                 ///< T_e decision epochs.
    double discount = 0.99;            ///< γ for discounted returns.
    ClientModel client_model = ClientModel::Aggregated;
    std::vector<double> nu0;           ///< initial per-queue state law; empty = δ_0.
    /// Track exact per-job sojourn times (FIFO timestamps per queue).
    bool track_sojourn = false;
    /// Partial information (paper §2.1 remark): if > 0, the upper-level
    /// policy sees an *estimate* of H_t^M built from this many uniformly
    /// sampled queues instead of the exact histogram. 0 = exact.
    std::size_t histogram_sample_size = 0;
};

/// Statistics of a single decision epoch, aggregated over all M queues.
struct EpochStats {
    double drops_per_queue = 0.0;        ///< D_t^{N,M} of eq. (6).
    std::uint64_t dropped_packets = 0;   ///< raw count across queues.
    std::uint64_t accepted_packets = 0;  ///< arrivals that entered a buffer.
    std::uint64_t served_packets = 0;    ///< completed services.
    double mean_queue_length = 0.0;      ///< time-average over the epoch.
    double server_utilization = 0.0;     ///< busy-time fraction.
    double mean_sojourn = 0.0;           ///< mean sojourn of jobs completed
                                         ///< this epoch (track_sojourn only).
    std::uint64_t completed_jobs = 0;    ///< sojourn sample count.
};

/// Episode-level summary; `total_drops_per_queue` is the quantity plotted in
/// Figures 4-6 ("average/total packet drops" per queue over ≈500 time units).
struct EpisodeStats {
    double total_drops_per_queue = 0.0;
    double discounted_return = 0.0; ///< -Σ_t γ^t D_t.
    std::uint64_t dropped_packets = 0;
    std::uint64_t accepted_packets = 0;
    double mean_queue_length = 0.0; ///< averaged over epochs.
    double server_utilization = 0.0;
    double mean_sojourn = 0.0;      ///< job-weighted mean sojourn (track_sojourn).
    std::uint64_t completed_jobs = 0;
    std::vector<double> drops_per_epoch;
};

/// Exact simulator of the finite (or infinite-client) queuing system.
class FiniteSystem {
public:
    explicit FiniteSystem(FiniteSystemConfig config);

    const FiniteSystemConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }

    /// Draws initial queue states i.i.d. from ν_0 and samples λ_0.
    void reset(Rng& rng);
    /// Like reset but with a fixed λ-state sequence (Theorem 1 conditioning).
    void reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng);

    bool done() const noexcept { return t_ >= config_.horizon; }
    int time() const noexcept { return t_; }
    std::size_t lambda_state() const noexcept { return lambda_state_; }
    double lambda_value() const { return config_.arrivals.level(lambda_state_); }
    const std::vector<int>& queue_states() const noexcept { return queues_; }

    /// Empirical distribution H_t^M over Z, eq. (2).
    std::vector<double> empirical_distribution() const;

    /// The distribution shown to the upper-level policy: exact H_t^M, or an
    /// estimate from `histogram_sample_size` sampled queues (paper §2.1).
    std::vector<double> observed_distribution(Rng& rng) const;

    /// One decision epoch: query the policy on (H_t^M, λ_t), route clients,
    /// simulate all queues for Δt, advance λ.
    EpochStats step(const UpperLevelPolicy& policy, Rng& rng);
    /// Same with an explicit decision rule (skips the policy query).
    EpochStats step_with_rule(const DecisionRule& h, Rng& rng);

    /// Runs a full episode from reset state; accumulates per-epoch stats.
    EpisodeStats run_episode(const UpperLevelPolicy& policy, Rng& rng);

    /// Per-queue arrival rates computed for the *current* snapshot under `h`
    /// — exposed for tests validating eq. (5) and its aggregation.
    std::vector<double> compute_queue_rates(const DecisionRule& h, Rng& rng) const;

private:
    std::vector<double> destination_probabilities(const DecisionRule& h) const;

    FiniteSystemConfig config_;
    TupleSpace space_;
    std::vector<int> queues_;
    std::vector<JobTimestamps> jobs_; ///< per-queue FIFO timestamps (sojourn mode).
    double clock_ = 0.0;              ///< absolute simulation time (sojourn mode).
    std::size_t lambda_state_ = 0;
    int t_ = 0;
    std::optional<std::vector<std::size_t>> conditioned_;
};

} // namespace mflb
