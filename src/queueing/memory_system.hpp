/// \file memory_system.hpp
/// Power-of-d with memory — the client-side memory idea of Anselmi & Dufour
/// ("Power-of-d-choices with memory", cited as [3] by the paper) adapted to
/// the synchronized-delay setting: besides its d fresh uniform samples, each
/// client also looks up the stale state of the queue it used last epoch and
/// routes to the shortest of the d+1 candidates. Memory adds information at
/// zero extra sampling cost, but under large Δt it can also reinforce
/// herding onto the same queue — which this module lets us measure
/// (bench/bench_ext_memory.cpp sweeps Δt on exactly this trade-off).
///
/// Built on `SystemBase` (λ-chain, episode loop, stats accumulation); only
/// the per-epoch routing kernel and the per-client memory vector live here.
#pragma once

#include "field/arrival_process.hpp"
#include "queueing/gillespie.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// Client dispatch discipline in the memory simulator.
enum class MemoryDiscipline {
    JsqD,       ///< plain JSQ(d): min of d fresh samples.
    JsqDMemory, ///< JSQ(d)+memory: min of d fresh samples + last-used queue.
    Random,     ///< uniform over the d fresh samples.
};

/// Configuration of the memory-augmented finite system.
struct MemorySystemConfig {
    int buffer = 5;
    double service_rate = 1.0;
    int d = 2;
    double dt = 1.0;
    ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    std::uint64_t num_clients = 10000;
    std::size_t num_queues = 100;
    int horizon = 100;
};

/// Episode statistics of the memory simulator: the shared episode summary
/// plus the herding diagnostic.
struct MemoryEpisodeStats : EpisodeStats {
    /// Fraction of routing decisions that picked the remembered queue
    /// (0 for disciplines without memory) — a direct herding diagnostic.
    double memory_hit_rate = 0.0;
};

/// Finite system where clients carry one remembered queue index across
/// epochs. Clients are simulated literally (memory is per-client state, so
/// the multinomial aggregation of FiniteSystem does not apply).
class MemorySystem : public SystemBase {
public:
    explicit MemorySystem(MemorySystemConfig config);

    const MemorySystemConfig& config() const noexcept { return config_; }
    void reset(Rng& rng);

    /// One synchronized epoch under the given discipline.
    EpochStats step(MemoryDiscipline discipline, Rng& rng);
    MemoryEpisodeStats run_episode(MemoryDiscipline discipline, Rng& rng);

private:
    MemorySystemConfig config_;
    std::vector<std::int32_t> memory_; ///< last-used queue per client; -1 = none.
    std::uint64_t memory_hits_ = 0;
    std::uint64_t decisions_ = 0;
    // Per-step buffers, preallocated.
    std::vector<std::uint64_t> counts_;
    std::vector<std::size_t> sampled_;
};

} // namespace mflb
