#include "queueing/memory_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

MemorySystem::MemorySystem(MemorySystemConfig config)
    : SystemBase(config.arrivals, config.dt, config.horizon, config.num_queues),
      config_(std::move(config)) {
    if (config_.num_clients == 0) {
        throw std::invalid_argument("MemorySystem: need clients and queues");
    }
    if (config_.buffer < 1 || config_.d < 1) {
        throw std::invalid_argument("MemorySystem: bad configuration");
    }
    memory_.assign(config_.num_clients, -1);
    counts_.assign(config_.num_queues, 0);
    sampled_.assign(static_cast<std::size_t>(config_.d), 0);
}

void MemorySystem::reset(Rng& rng) {
    std::fill(queues_.begin(), queues_.end(), 0);
    std::fill(memory_.begin(), memory_.end(), -1);
    reset_base(rng);
    memory_hits_ = 0;
    decisions_ = 0;
}

EpochStats MemorySystem::step(MemoryDiscipline discipline, Rng& rng) {
    if (done()) {
        throw std::logic_error("MemorySystem::step: episode finished");
    }
    const std::size_t m = queues_.size();
    const double lambda = lambda_value();

    std::fill(counts_.begin(), counts_.end(), 0);
    for (std::uint64_t i = 0; i < config_.num_clients; ++i) {
        for (int k = 0; k < config_.d; ++k) {
            sampled_[static_cast<std::size_t>(k)] =
                static_cast<std::size_t>(rng.uniform_below(m));
        }
        std::size_t choice = sampled_[0];
        switch (discipline) {
        case MemoryDiscipline::Random:
            choice = sampled_[static_cast<std::size_t>(rng.uniform_below(sampled_.size()))];
            break;
        case MemoryDiscipline::JsqD:
        case MemoryDiscipline::JsqDMemory: {
            int best_state = queues_[sampled_[0]];
            for (int k = 1; k < config_.d; ++k) {
                const std::size_t j = sampled_[static_cast<std::size_t>(k)];
                if (queues_[j] < best_state) {
                    best_state = queues_[j];
                    choice = j;
                }
            }
            if (discipline == MemoryDiscipline::JsqDMemory && memory_[i] >= 0) {
                const auto remembered = static_cast<std::size_t>(memory_[i]);
                // Strict inequality: ties go to the fresh sample so memory
                // does not trivially lock clients onto one queue.
                if (queues_[remembered] < best_state) {
                    choice = remembered;
                    ++memory_hits_;
                }
            }
            break;
        }
        }
        memory_[i] = static_cast<std::int32_t>(choice);
        ++counts_[choice];
        ++decisions_;
    }

    const double scale =
        static_cast<double>(m) * lambda / static_cast<double>(config_.num_clients);
    EpochStats stats;
    double area = 0.0;
    double busy = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        const QueueEpochResult r =
            simulate_queue_epoch(queues_[j], scale * static_cast<double>(counts_[j]),
                                 config_.service_rate, config_.buffer, config_.dt, rng);
        queues_[j] = r.final_state;
        stats.dropped_packets += r.drops;
        stats.accepted_packets += r.arrivals;
        stats.served_packets += r.services;
        area += r.queue_length_area;
        busy += r.busy_time;
    }
    const double m_dt = static_cast<double>(m) * config_.dt;
    stats.drops_per_queue =
        static_cast<double>(stats.dropped_packets) / static_cast<double>(m);
    stats.mean_queue_length = area / m_dt;
    stats.server_utilization = busy / m_dt;
    advance_epoch(rng);
    return stats;
}

MemoryEpisodeStats MemorySystem::run_episode(MemoryDiscipline discipline, Rng& rng) {
    MemoryEpisodeStats stats;
    static_cast<EpisodeStats&>(stats) =
        run_episode_loop(/*discount=*/1.0, [&] { return step(discipline, rng); });
    stats.memory_hit_rate =
        decisions_ > 0 ? static_cast<double>(memory_hits_) / static_cast<double>(decisions_)
                       : 0.0;
    return stats;
}

} // namespace mflb
