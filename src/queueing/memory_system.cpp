#include "queueing/memory_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

MemorySystem::MemorySystem(MemorySystemConfig config) : config_(std::move(config)) {
    if (config_.num_queues == 0 || config_.num_clients == 0) {
        throw std::invalid_argument("MemorySystem: need clients and queues");
    }
    if (config_.buffer < 1 || config_.d < 1 || config_.horizon < 1) {
        throw std::invalid_argument("MemorySystem: bad configuration");
    }
    queues_.assign(config_.num_queues, 0);
    memory_.assign(config_.num_clients, -1);
}

void MemorySystem::reset(Rng& rng) {
    std::fill(queues_.begin(), queues_.end(), 0);
    std::fill(memory_.begin(), memory_.end(), -1);
    lambda_state_ = config_.arrivals.sample_initial(rng);
    t_ = 0;
    total_drops_ = 0;
    memory_hits_ = 0;
    decisions_ = 0;
}

double MemorySystem::step(MemoryDiscipline discipline, Rng& rng) {
    if (done()) {
        throw std::logic_error("MemorySystem::step: episode finished");
    }
    const std::size_t m = queues_.size();
    const double lambda = config_.arrivals.level(lambda_state_);

    std::vector<std::uint64_t> counts(m, 0);
    std::vector<std::size_t> sampled(static_cast<std::size_t>(config_.d));
    for (std::uint64_t i = 0; i < config_.num_clients; ++i) {
        for (int k = 0; k < config_.d; ++k) {
            sampled[static_cast<std::size_t>(k)] =
                static_cast<std::size_t>(rng.uniform_below(m));
        }
        std::size_t choice = sampled[0];
        switch (discipline) {
        case MemoryDiscipline::Random:
            choice = sampled[static_cast<std::size_t>(rng.uniform_below(sampled.size()))];
            break;
        case MemoryDiscipline::JsqD:
        case MemoryDiscipline::JsqDMemory: {
            int best_state = queues_[sampled[0]];
            for (int k = 1; k < config_.d; ++k) {
                const std::size_t j = sampled[static_cast<std::size_t>(k)];
                if (queues_[j] < best_state) {
                    best_state = queues_[j];
                    choice = j;
                }
            }
            if (discipline == MemoryDiscipline::JsqDMemory && memory_[i] >= 0) {
                const auto remembered = static_cast<std::size_t>(memory_[i]);
                // Strict inequality: ties go to the fresh sample so memory
                // does not trivially lock clients onto one queue.
                if (queues_[remembered] < best_state) {
                    choice = remembered;
                    ++memory_hits_;
                }
            }
            break;
        }
        }
        memory_[i] = static_cast<std::int32_t>(choice);
        ++counts[choice];
        ++decisions_;
    }

    const double scale =
        static_cast<double>(m) * lambda / static_cast<double>(config_.num_clients);
    std::uint64_t drops = 0;
    for (std::size_t j = 0; j < m; ++j) {
        const QueueEpochResult r =
            simulate_queue_epoch(queues_[j], scale * static_cast<double>(counts[j]),
                                 config_.service_rate, config_.buffer, config_.dt, rng);
        queues_[j] = r.final_state;
        drops += r.drops;
    }
    total_drops_ += drops;
    ++t_;
    lambda_state_ = config_.arrivals.step(lambda_state_, rng);
    return static_cast<double>(drops) / static_cast<double>(m);
}

MemoryEpisodeStats MemorySystem::run_episode(MemoryDiscipline discipline, Rng& rng) {
    MemoryEpisodeStats stats;
    while (!done()) {
        stats.total_drops_per_queue += step(discipline, rng);
    }
    stats.dropped_packets = total_drops_;
    stats.memory_hit_rate =
        decisions_ > 0 ? static_cast<double>(memory_hits_) / static_cast<double>(decisions_)
                       : 0.0;
    return stats;
}

} // namespace mflb
