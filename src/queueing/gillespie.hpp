/// \file gillespie.hpp
/// Exact stochastic simulation of one finite-buffer queue over a decision
/// epoch — the per-queue kernel of the Section 2.1 finite system. Within an
/// epoch the paper's model freezes the arrival rate (clients routed on the
/// stale snapshot), so each queue is an independent M/M/1/B birth-death
/// CTMC; we sample exponential inter-event times exactly (Gillespie 1977),
/// counting blocked arrivals as drops.
/// \see field/transition.hpp for the matching deterministic mean-field step.
#pragma once

#include "support/rng.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// Exact outcome of simulating one queue for `dt` time units.
struct QueueEpochResult {
    int final_state = 0;          ///< queue fill at the end of the epoch.
    std::uint64_t drops = 0;      ///< arrivals rejected at the full buffer.
    std::uint64_t arrivals = 0;   ///< accepted arrivals.
    std::uint64_t services = 0;   ///< completed services.
    double queue_length_area = 0; ///< ∫_0^dt z(τ) dτ (for mean-length metrics).
    double busy_time = 0.0;       ///< time with z(τ) > 0 (server utilization).
};

/// Simulates a single queue starting at fill `z0` with Poisson arrivals at
/// `arrival_rate`, exponential services at `service_rate`, buffer `buffer`,
/// over an epoch of length `dt`. Exact: samples every event.
QueueEpochResult simulate_queue_epoch(int z0, double arrival_rate, double service_rate,
                                      int buffer, double dt, Rng& rng) noexcept;

/// Transient distribution oracle for tests: probability vector over
/// {0..buffer} after `dt` time units starting from `z0`, computed by
/// uniformization of the same birth-death generator (no sampling).
/// Declared here so simulator tests can cross-validate without linking the
/// mean-field library; implemented in terms of math/expm.
struct QueueTransientResult {
    std::vector<double> state_distribution; ///< P(z(dt) = z).
    double expected_drops = 0.0;            ///< E[drops over the epoch].
};
QueueTransientResult queue_transient_solution(int z0, double arrival_rate, double service_rate,
                                              int buffer, double dt);

} // namespace mflb
