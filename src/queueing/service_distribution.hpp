/// \file service_distribution.hpp
/// First-class service-time distributions for the finite-system simulators.
///
/// The paper's model is M/M/1/B: exponential(α) service baked into every
/// departure-event sampler. Heavy-tailed workloads (ROADMAP: Pareto job
/// sizes stressing the exponential-service assumption) need the service law
/// to be a pluggable component instead. `ServiceDistribution` bundles the
/// four laws used by the classical-baseline suite — exponential,
/// deterministic, two-phase hyperexponential, and bounded Pareto — behind
/// one `sample()` call, all normalized to the same mean 1/α so swapping the
/// law never changes the offered load, only its variability.
///
/// Determinism contract: `sample` consumes a fixed number of RNG draws per
/// call for each kind (exponential 1, deterministic 0, hyperexponential 2,
/// bounded Pareto 1) and never allocates, so the per-shard draw-order
/// determinism of the sharded DES backend is preserved for every kind; the
/// `Exponential` kind delegates to `Rng::exponential` so default-configured
/// trajectories stay bit-identical to the pre-refactor constants
/// (tests/test_golden_trajectories.cpp).
///
/// Closed forms (mean, second moment, CDF) are exposed for the analytic
/// oracles: Pollaczek–Khinchine mean sojourn for M/G/1 validation and
/// KS-style sampler checks (tests/test_service_distribution.cpp).
#pragma once

#include "support/rng.hpp"

#include <string_view>

namespace mflb {

/// Which service-time law the departure-event samplers draw from.
enum class ServiceDistKind {
    Exponential,   ///< the paper's M/M/1/B law (SCV 1).
    Deterministic, ///< constant 1/α (SCV 0) — D/M-style services.
    HyperExp,      ///< balanced-mean two-phase H2, SCV > 1 (bursty sizes).
    BoundedPareto, ///< Pareto(α_tail) truncated to [L, cap·L] (heavy tail).
};

/// "exponential" / "deterministic" / "hyperexp" / "pareto".
std::string_view service_dist_name(ServiceDistKind kind) noexcept;
/// Inverse of service_dist_name; throws std::invalid_argument on unknowns.
ServiceDistKind parse_service_dist(std::string_view name);

/// Declarative service-law configuration carried by `FiniteSystemConfig`;
/// the rate itself stays in `QueueParams::service_rate` (the mean is 1/α for
/// every kind, so Table-1 loads are comparable across laws).
struct ServiceConfig {
    ServiceDistKind kind = ServiceDistKind::Exponential;
    /// HyperExp only: target squared coefficient of variation (> 1).
    double hyper_scv = 4.0;
    /// BoundedPareto only: tail index of the truncated power law (> 0).
    double pareto_alpha = 1.5;
    /// BoundedPareto only: truncation ratio H/L (> 1); larger = heavier tail
    /// mass before the cutoff.
    double pareto_cap = 1000.0;
};

/// A sampleable service-time law with closed-form moments and CDF. Cheap to
/// copy; `sample` is allocation-free and draw-count-deterministic (see file
/// comment), which the simulator hot paths rely on.
class ServiceDistribution {
public:
    /// Exponential with rate 1 (the all-defaults law).
    ServiceDistribution() : ServiceDistribution(ServiceConfig{}, 1.0) {}
    /// The law of `config.kind` scaled to mean `1 / rate`; throws
    /// std::invalid_argument on rate <= 0 or out-of-range shape parameters.
    ServiceDistribution(const ServiceConfig& config, double rate);

    ServiceDistKind kind() const noexcept { return kind_; }
    /// E[S] = 1 / rate for every kind (the normalization contract).
    double mean() const noexcept { return mean_; }
    /// E[S^2] in closed form (finite for every kind — the Pareto is bounded).
    double second_moment() const noexcept { return second_moment_; }
    /// Squared coefficient of variation Var[S] / E[S]^2.
    double scv() const noexcept { return second_moment_ / (mean_ * mean_) - 1.0; }
    /// P(S <= t); exact closed form, used by the KS-style sampler tests.
    double cdf(double t) const noexcept;

    /// One service time. Fixed draw count per kind; never allocates.
    double sample(Rng& rng) const noexcept;

private:
    ServiceDistKind kind_ = ServiceDistKind::Exponential;
    double mean_ = 1.0;
    double second_moment_ = 2.0;
    // Exponential: rate_. HyperExp: phase probability p_ and rates r1_, r2_.
    // BoundedPareto: lower bound low_, upper bound high_, tail index alpha_,
    // and the truncation normalizer trunc_ = 1 - (L/H)^alpha.
    double rate_ = 1.0;
    double p_ = 0.5;
    double r1_ = 1.0;
    double r2_ = 1.0;
    double low_ = 1.0;
    double high_ = 1.0;
    double alpha_ = 1.5;
    double trunc_ = 1.0;
};

/// Pollaczek–Khinchine mean sojourn of the stable M/G/1 queue:
///     E[T] = E[S] + λ E[S^2] / (2 (1 - λ E[S])).
/// Oracle for the analytic baseline tests (finite-B simulations approach it
/// once blocking is negligible). Throws std::invalid_argument unless
/// 0 < λ E[S] < 1.
double mg1_mean_sojourn(double arrival_rate, const ServiceDistribution& service);

} // namespace mflb
