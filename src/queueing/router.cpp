#include "queueing/router.hpp"

#include "field/tuple_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mflb {

std::string_view router_name(RouterKind kind) noexcept {
    switch (kind) {
    case RouterKind::Policy:
        return "policy";
    case RouterKind::Random:
        return "random";
    case RouterKind::RoundRobin:
        return "round-robin";
    case RouterKind::Jsq:
        return "jsq";
    case RouterKind::JsqD:
        return "jsq-d";
    case RouterKind::SqStale:
        return "sq-stale";
    }
    return "policy";
}

RouterKind parse_router(std::string_view name) {
    if (name == "policy") {
        return RouterKind::Policy;
    }
    if (name == "random" || name == "rnd") {
        return RouterKind::Random;
    }
    if (name == "round-robin" || name == "rr") {
        return RouterKind::RoundRobin;
    }
    if (name == "jsq") {
        return RouterKind::Jsq;
    }
    if (name == "jsq-d" || name == "jsqd") {
        return RouterKind::JsqD;
    }
    if (name == "sq-stale" || name == "sq") {
        return RouterKind::SqStale;
    }
    throw std::invalid_argument(
        "unknown router '" + std::string(name) +
        "'; expected policy|random|round-robin|jsq|jsq-d|sq-stale");
}

EpochRouter::EpochRouter(const RouterSpec& spec, std::size_t num_queues,
                         std::size_t num_states, double dt)
    : spec_(spec) {
    switch (spec_.kind) {
    case RouterKind::SqStale: {
        if (!(spec_.stale_period >= 0.0)) {
            throw std::invalid_argument("EpochRouter: stale_period must be >= 0");
        }
        // Whole-epoch rounding: information can only be observed at epoch
        // barriers, so a period of e.g. 2.5·dt refreshes every 3rd epoch.
        refresh_every_ = std::max(1, static_cast<int>(std::ceil(spec_.stale_period / dt)));
        frozen_.assign(num_queues, 0);
        break;
    }
    case RouterKind::JsqD: {
        if (spec_.d < 1) {
            throw std::invalid_argument("EpochRouter: jsq-d requires d >= 1");
        }
        const TupleSpace space(num_states, spec_.d);
        jsq_rule_.push_back(DecisionRule::mf_jsq(space));
        hist_.assign(num_states, 0.0);
        g_.assign(static_cast<std::size_t>(spec_.d) * num_states, 0.0);
        tuple_.assign(static_cast<std::size_t>(spec_.d), 0);
        suffix_.assign(static_cast<std::size_t>(spec_.d) + 1, 1.0);
        break;
    }
    case RouterKind::Policy:
    case RouterKind::Random:
    case RouterKind::RoundRobin:
    case RouterKind::Jsq:
        break;
    }
}

void EpochRouter::jsq_weights(std::span<const int> snapshot, std::span<double> weights) {
    // All mass uniformly on the argmin queues (equal weights on ties — the
    // same tie law as the mean-field JSQ rule of eq. (34)).
    const int min_z = *std::min_element(snapshot.begin(), snapshot.end());
    for (std::size_t j = 0; j < snapshot.size(); ++j) {
        weights[j] = snapshot[j] == min_z ? 1.0 : 0.0;
    }
}

void EpochRouter::epoch_weights(std::span<const int> snapshot, int epoch,
                                std::span<double> weights) {
    switch (spec_.kind) {
    case RouterKind::Policy:
        throw std::logic_error("EpochRouter: the Policy kind has no weight law");
    case RouterKind::Random:
    case RouterKind::RoundRobin:
        // Round-robin's weight law is its equal-split mean behavior; the DES
        // backends override per-arrival destinations with a cyclic cursor
        // and use these weights only for shard-mass partitioning.
        std::fill(weights.begin(), weights.end(), 1.0);
        return;
    case RouterKind::Jsq:
        jsq_weights(snapshot, weights);
        return;
    case RouterKind::SqStale:
        if (!have_frozen_ || epoch % refresh_every_ == 0) {
            std::copy(snapshot.begin(), snapshot.end(), frozen_.begin());
            have_frozen_ = true;
        }
        jsq_weights(frozen_, weights);
        return;
    case RouterKind::JsqD: {
        // Exact power-of-d law: an arriving job samples d queues uniformly
        // i.i.d. and joins the shortest. The per-queue destination law is
        // the shared routing-table computation with the MF-JSQ rule —
        // identical arithmetic to the policy path's aggregation, so jsq-d
        // and the fixed MF-JSQ policy agree by construction.
        const double inv_m = 1.0 / static_cast<double>(snapshot.size());
        std::fill(hist_.begin(), hist_.end(), 0.0);
        for (const int z : snapshot) {
            hist_[static_cast<std::size_t>(z)] += inv_m;
        }
        compute_destination_law_into(snapshot, hist_, jsq_rule_.front(), tuple_, suffix_,
                                     g_, weights);
        return;
    }
    }
}

} // namespace mflb
