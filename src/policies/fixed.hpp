/// \file fixed.hpp
/// State-independent upper-level policies: the same decision rule h is
/// applied at every epoch regardless of (ν_t, λ_t). These realize the
/// paper's baselines — JSQ(d) (eq. 34) is optimal as Δt → 0, RND (eq. 35) as
/// Δt → ∞ — plus the interpolating Boltzmann family used by examples and
/// ablations.
#pragma once

#include "field/mfc_env.hpp"

#include <string>

namespace mflb {

/// Applies one fixed decision rule at every decision epoch.
class FixedRulePolicy final : public UpperLevelPolicy {
public:
    FixedRulePolicy(std::string name, DecisionRule rule);

    DecisionRule decide(std::span<const double> nu, std::size_t lambda_state,
                        Rng& rng) const override;
    std::string name() const override { return name_; }
    const DecisionRule& rule() const noexcept { return rule_; }

private:
    std::string name_;
    DecisionRule rule_;
};

/// MF-JSQ(d) of eq. (34): all mass on the shortest sampled queue(s).
FixedRulePolicy make_jsq_policy(const TupleSpace& space);
/// MF-RND of eq. (35): uniform over the d sampled queues.
FixedRulePolicy make_rnd_policy(const TupleSpace& space);
/// Boltzmann interpolation h(u|z̄) ∝ exp(-β z̄_u).
FixedRulePolicy make_greedy_softmax_policy(const TupleSpace& space, double beta);

} // namespace mflb
