#include "policies/tabular.hpp"

#include <stdexcept>

namespace mflb {

TabularPolicy::TabularPolicy(const TupleSpace& space, std::size_t num_lambda_states,
                             RuleParameterization parameterization, std::string name)
    : space_(space),
      num_lambda_states_(num_lambda_states),
      parameterization_(parameterization),
      name_(std::move(name)) {
    if (num_lambda_states_ == 0) {
        throw std::invalid_argument("TabularPolicy: need at least one lambda state");
    }
    const std::size_t per_rule = space_.size() * static_cast<std::size_t>(space_.d());
    // Zero logits = uniform rows = MF-RND; a safe, valid starting policy for
    // both parameterizations.
    params_.assign(num_lambda_states_ * per_rule,
                   parameterization_ == RuleParameterization::Logits
                       ? 0.0
                       : 1.0 / static_cast<double>(space_.d()));
}

void TabularPolicy::set_parameters(std::span<const double> params) {
    if (params.size() != params_.size()) {
        throw std::invalid_argument("TabularPolicy::set_parameters: wrong size");
    }
    params_.assign(params.begin(), params.end());
}

DecisionRule TabularPolicy::rule_for(std::size_t lambda_state) const {
    if (lambda_state >= num_lambda_states_) {
        throw std::out_of_range("TabularPolicy::rule_for: lambda state out of range");
    }
    const std::size_t per_rule = space_.size() * static_cast<std::size_t>(space_.d());
    const std::span<const double> slice(params_.data() + lambda_state * per_rule, per_rule);
    switch (parameterization_) {
    case RuleParameterization::Logits:
        return DecisionRule::from_logits(space_, slice);
    case RuleParameterization::Simplex:
        return DecisionRule::from_probabilities(space_, slice);
    }
    return DecisionRule(space_);
}

DecisionRule TabularPolicy::decide(std::span<const double> /*nu*/, std::size_t lambda_state,
                                   Rng& /*rng*/) const {
    return rule_for(lambda_state);
}

Archive TabularPolicy::to_archive() const {
    Archive archive;
    archive.put("type", std::string("tabular"));
    archive.put("name", name_);
    archive.put("num_states", static_cast<std::int64_t>(space_.num_states()));
    archive.put("d", static_cast<std::int64_t>(space_.d()));
    archive.put("num_lambda_states", static_cast<std::int64_t>(num_lambda_states_));
    archive.put("parameterization",
                std::string(parameterization_ == RuleParameterization::Logits ? "logits"
                                                                              : "simplex"));
    archive.put("params", params_);
    return archive;
}

TabularPolicy TabularPolicy::from_archive(const Archive& archive) {
    if (archive.get_string("type") != "tabular") {
        throw std::invalid_argument("TabularPolicy::from_archive: wrong archive type");
    }
    const TupleSpace space(static_cast<int>(archive.get_int("num_states")),
                           static_cast<int>(archive.get_int("d")));
    const auto parameterization = archive.get_string("parameterization") == "logits"
                                      ? RuleParameterization::Logits
                                      : RuleParameterization::Simplex;
    TabularPolicy policy(space, static_cast<std::size_t>(archive.get_int("num_lambda_states")),
                         parameterization, archive.get_string("name"));
    policy.set_parameters(archive.get_vector("params"));
    return policy;
}

} // namespace mflb
