/// \file tabular.hpp
/// Tabular upper-level policy: one full decision rule per arrival-rate
/// modulation state, parameterized either by logits (softmax rows, the
/// paper's "manual normalization") or directly by clamped/renormalized
/// probabilities (the paper's remark that Dirichlet-style raw simplex
/// parameterization trains worse — kept for the ablation bench).
///
/// The parameter vector is flat — |Λ| · |Z|^d · d reals — which makes the
/// class directly optimizable by the derivative-free CEM trainer, and
/// serializable for the offline-train / online-apply workflow.
#pragma once

#include "field/mfc_env.hpp"
#include "support/serialization.hpp"

#include <string>
#include <vector>

namespace mflb {

/// How the flat parameters map to row-stochastic decision rules.
enum class RuleParameterization {
    Logits,  ///< rows = softmax(params) — smooth, unconstrained.
    Simplex, ///< rows = clamp(params, 0)/sum — the ablation variant.
};

/// Piecewise-constant-in-λ upper policy with a learnable decision rule per
/// modulation state (ν is not used; the learned MFC policies in the paper's
/// evaluation operate on (λ, z̄) — see Fig. 2's lower-level application).
class TabularPolicy final : public UpperLevelPolicy {
public:
    TabularPolicy(const TupleSpace& space, std::size_t num_lambda_states,
                  RuleParameterization parameterization = RuleParameterization::Logits,
                  std::string name = "MF-tabular");

    std::size_t parameter_count() const noexcept { return params_.size(); }
    const std::vector<double>& parameters() const noexcept { return params_; }
    void set_parameters(std::span<const double> params);

    DecisionRule decide(std::span<const double> nu, std::size_t lambda_state,
                        Rng& rng) const override;
    std::string name() const override { return name_; }

    /// Decision rule for a specific λ-state (deterministic).
    DecisionRule rule_for(std::size_t lambda_state) const;

    RuleParameterization parameterization() const noexcept { return parameterization_; }
    const TupleSpace& space() const noexcept { return space_; }
    std::size_t num_lambda_states() const noexcept { return num_lambda_states_; }

    /// Serializes shape + parameters.
    Archive to_archive() const;
    static TabularPolicy from_archive(const Archive& archive);

private:
    TupleSpace space_;
    std::size_t num_lambda_states_;
    RuleParameterization parameterization_;
    std::string name_;
    std::vector<double> params_;
};

} // namespace mflb
