#include "policies/fixed.hpp"

#include <sstream>

namespace mflb {

FixedRulePolicy::FixedRulePolicy(std::string name, DecisionRule rule)
    : name_(std::move(name)), rule_(std::move(rule)) {}

DecisionRule FixedRulePolicy::decide(std::span<const double> /*nu*/,
                                     std::size_t /*lambda_state*/, Rng& /*rng*/) const {
    return rule_;
}

FixedRulePolicy make_jsq_policy(const TupleSpace& space) {
    std::ostringstream name;
    name << "JSQ(" << space.d() << ")";
    return FixedRulePolicy(name.str(), DecisionRule::mf_jsq(space));
}

FixedRulePolicy make_rnd_policy(const TupleSpace& space) {
    return FixedRulePolicy("RND", DecisionRule::mf_rnd(space));
}

FixedRulePolicy make_greedy_softmax_policy(const TupleSpace& space, double beta) {
    std::ostringstream name;
    name << "Boltzmann(beta=" << beta << ")";
    return FixedRulePolicy(name.str(), DecisionRule::greedy_softmax(space, beta));
}

} // namespace mflb
