#include "field/mmpp_fit.hpp"

#include "support/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mflb {

namespace {
/// log Poisson pmf with mean mu at count y (y as double).
double log_poisson(double y, double mu) {
    if (mu <= 0.0) {
        return y == 0.0 ? 0.0 : -1e300;
    }
    return y * std::log(mu) - mu - std::lgamma(y + 1.0);
}
} // namespace

ArrivalProcess MmppFitResult::to_arrival_process() const {
    return ArrivalProcess(levels, transition, initial);
}

std::vector<std::uint64_t> sample_arrival_counts(const ArrivalProcess& process,
                                                 double num_queues, double dt,
                                                 std::size_t epochs, Rng& rng) {
    std::vector<std::uint64_t> counts;
    counts.reserve(epochs);
    std::size_t state = process.sample_initial(rng);
    for (std::size_t t = 0; t < epochs; ++t) {
        counts.push_back(rng.poisson(num_queues * process.level(state) * dt));
        state = process.step(state, rng);
    }
    return counts;
}

MmppFitResult fit_arrival_process(std::span<const std::uint64_t> counts, double num_queues,
                                  double dt, const MmppFitConfig& config) {
    const std::size_t horizon = counts.size();
    const std::size_t k = config.num_states;
    if (horizon < 2) {
        throw std::invalid_argument("fit_arrival_process: need at least 2 observations");
    }
    if (k < 1) {
        throw std::invalid_argument("fit_arrival_process: need at least one state");
    }
    if (num_queues <= 0.0 || dt <= 0.0) {
        throw std::invalid_argument("fit_arrival_process: num_queues and dt must be positive");
    }
    const double scale = num_queues * dt; // Poisson mean = scale * level

    std::vector<double> y(horizon);
    for (std::size_t t = 0; t < horizon; ++t) {
        y[t] = static_cast<double>(counts[t]);
    }

    // --- initialization: levels spread evenly over the observed count range
    // (quantile-based inits can collapse two states onto the dominant level
    // when the state occupancies are skewed; an even spread cannot).
    const auto [lo_it, hi_it] = std::minmax_element(y.begin(), y.end());
    const double lo = *lo_it, hi = std::max(*hi_it, *lo_it + 1.0);
    std::vector<double> levels(k);
    Rng rng(config.seed);
    for (std::size_t s = 0; s < k; ++s) {
        const double frac = (static_cast<double>(s) + 0.5) / static_cast<double>(k);
        levels[s] =
            std::max((lo + frac * (hi - lo)) / scale, 1e-6) * (1.0 + 0.01 * rng.normal());
    }
    Matrix transition(k, k);
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            transition(i, j) = i == j ? 0.8 : 0.2 / std::max<double>(1.0, static_cast<double>(k - 1));
        }
        if (k == 1) {
            transition(i, i) = 1.0;
        }
    }
    std::vector<double> initial(k, 1.0 / static_cast<double>(k));

    MmppFitResult result;
    std::vector<double> alpha(horizon * k), beta(horizon * k), scaling(horizon);
    std::vector<double> gamma(horizon * k);
    std::vector<double> xi_sum(k * k);
    double previous_ll = -1e300;

    for (std::size_t iteration = 0; iteration < config.max_iterations; ++iteration) {
        // --- E step: scaled forward-backward ------------------------------
        auto emission = [&](std::size_t t, std::size_t s) {
            return std::exp(log_poisson(y[t], scale * levels[s]));
        };
        double ll = 0.0;
        // forward
        double norm = 0.0;
        for (std::size_t s = 0; s < k; ++s) {
            alpha[s] = initial[s] * emission(0, s);
            norm += alpha[s];
        }
        norm = std::max(norm, 1e-300);
        scaling[0] = norm;
        for (std::size_t s = 0; s < k; ++s) {
            alpha[s] /= norm;
        }
        ll += std::log(norm);
        for (std::size_t t = 1; t < horizon; ++t) {
            norm = 0.0;
            for (std::size_t s = 0; s < k; ++s) {
                double acc = 0.0;
                for (std::size_t r = 0; r < k; ++r) {
                    acc += alpha[(t - 1) * k + r] * transition(r, s);
                }
                alpha[t * k + s] = acc * emission(t, s);
                norm += alpha[t * k + s];
            }
            norm = std::max(norm, 1e-300);
            scaling[t] = norm;
            for (std::size_t s = 0; s < k; ++s) {
                alpha[t * k + s] /= norm;
            }
            ll += std::log(norm);
        }
        // backward
        for (std::size_t s = 0; s < k; ++s) {
            beta[(horizon - 1) * k + s] = 1.0;
        }
        for (std::size_t t = horizon - 1; t-- > 0;) {
            for (std::size_t s = 0; s < k; ++s) {
                double acc = 0.0;
                for (std::size_t r = 0; r < k; ++r) {
                    acc += transition(s, r) * emission(t + 1, r) * beta[(t + 1) * k + r];
                }
                beta[t * k + s] = acc / scaling[t + 1];
            }
        }
        // responsibilities
        for (std::size_t t = 0; t < horizon; ++t) {
            double total = 0.0;
            for (std::size_t s = 0; s < k; ++s) {
                gamma[t * k + s] = alpha[t * k + s] * beta[t * k + s];
                total += gamma[t * k + s];
            }
            total = std::max(total, 1e-300);
            for (std::size_t s = 0; s < k; ++s) {
                gamma[t * k + s] /= total;
            }
        }
        std::fill(xi_sum.begin(), xi_sum.end(), 0.0);
        for (std::size_t t = 0; t + 1 < horizon; ++t) {
            double total = 0.0;
            for (std::size_t s = 0; s < k; ++s) {
                for (std::size_t r = 0; r < k; ++r) {
                    total += alpha[t * k + s] * transition(s, r) * emission(t + 1, r) *
                             beta[(t + 1) * k + r];
                }
            }
            total = std::max(total, 1e-300);
            for (std::size_t s = 0; s < k; ++s) {
                for (std::size_t r = 0; r < k; ++r) {
                    xi_sum[s * k + r] += alpha[t * k + s] * transition(s, r) *
                                         emission(t + 1, r) * beta[(t + 1) * k + r] / total;
                }
            }
        }

        // --- M step --------------------------------------------------------
        for (std::size_t s = 0; s < k; ++s) {
            double weight = 0.0, weighted_counts = 0.0;
            for (std::size_t t = 0; t < horizon; ++t) {
                weight += gamma[t * k + s];
                weighted_counts += gamma[t * k + s] * y[t];
            }
            levels[s] = std::max(weighted_counts / std::max(weight, 1e-12) / scale, 1e-9);
            initial[s] = gamma[s];
            double row_total = 0.0;
            for (std::size_t r = 0; r < k; ++r) {
                row_total += xi_sum[s * k + r];
            }
            if (row_total > 1e-300) {
                for (std::size_t r = 0; r < k; ++r) {
                    transition(s, r) = xi_sum[s * k + r] / row_total;
                }
            }
        }
        // Normalize the initial distribution (gamma row 0 is normalized
        // already, but keep it robust).
        double init_total = std::accumulate(initial.begin(), initial.end(), 0.0);
        for (double& v : initial) {
            v /= std::max(init_total, 1e-300);
        }

        result.log_likelihood_trace.push_back(ll);
        result.iterations = iteration + 1;
        if (ll - previous_ll < config.tolerance && iteration > 0) {
            break;
        }
        previous_ll = ll;
    }

    // Sort states by level (descending) so state 0 is the high-rate level,
    // matching the paper's (λ_h, λ_l) convention.
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return levels[a] > levels[b]; });
    result.levels.resize(k);
    result.initial.resize(k);
    result.transition = Matrix(k, k);
    for (std::size_t s = 0; s < k; ++s) {
        result.levels[s] = levels[order[s]];
        result.initial[s] = initial[order[s]];
        for (std::size_t r = 0; r < k; ++r) {
            result.transition(s, r) = transition(order[s], order[r]);
        }
    }
    return result;
}

} // namespace mflb
