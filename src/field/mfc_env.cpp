#include "field/mfc_env.hpp"

#include <cmath>
#include <stdexcept>

namespace mflb {

void UpperLevelPolicy::decide_into(std::span<const double> nu, std::size_t lambda_state,
                                   Rng& rng, Scratch* /*scratch*/, DecisionRule& out) const {
    out = decide(nu, lambda_state, rng);
}

int MfcConfig::horizon_for_total_time(double total_time, double dt) noexcept {
    const int epochs = static_cast<int>(std::lround(total_time / dt));
    return epochs > 0 ? epochs : 1;
}

MfcEnv::MfcEnv(MfcConfig config)
    : config_(std::move(config)),
      disc_(config_.queue, config_.dt),
      space_(config_.queue.num_states(), config_.d) {
    if (config_.horizon <= 0) {
        throw std::invalid_argument("MfcEnv: horizon must be positive");
    }
    if (config_.nu0.empty()) {
        // Table 1: ν_0 = [1, 0, 0, ...] — all queues start empty.
        config_.nu0.assign(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
        config_.nu0[0] = 1.0;
    }
    if (config_.nu0.size() != static_cast<std::size_t>(config_.queue.num_states())) {
        throw std::invalid_argument("MfcEnv: nu0 size mismatch");
    }
    nu_ = config_.nu0;
}

void MfcEnv::reset(Rng& rng) {
    nu_ = config_.nu0;
    lambda_state_ = config_.arrivals.sample_initial(rng);
    t_ = 0;
    conditioned_.reset();
}

void MfcEnv::reset_conditioned(std::vector<std::size_t> lambda_states) {
    if (lambda_states.empty()) {
        throw std::invalid_argument("MfcEnv: conditioned sequence must be non-empty");
    }
    for (std::size_t s : lambda_states) {
        if (s >= config_.arrivals.num_states()) {
            throw std::invalid_argument("MfcEnv: conditioned state out of range");
        }
    }
    nu_ = config_.nu0;
    t_ = 0;
    lambda_state_ = lambda_states.front();
    conditioned_ = std::move(lambda_states);
}

std::vector<double> MfcEnv::observation() const {
    std::vector<double> obs;
    obs.reserve(observation_dim());
    obs.insert(obs.end(), nu_.begin(), nu_.end());
    for (std::size_t s = 0; s < config_.arrivals.num_states(); ++s) {
        obs.push_back(s == lambda_state_ ? 1.0 : 0.0);
    }
    return obs;
}

std::size_t MfcEnv::observation_dim() const noexcept {
    return nu_.size() + config_.arrivals.num_states();
}

MfcEnv::Outcome MfcEnv::step(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("MfcEnv::step: episode already finished");
    }
    if (!(h.space() == space_)) {
        throw std::invalid_argument("MfcEnv::step: decision rule on wrong tuple space");
    }
    disc_.step(nu_, h, lambda_value(), step_buf_);
    const MeanFieldStep& transition = step_buf_;
    nu_ = transition.nu_next;
    ++t_;
    if (conditioned_) {
        const std::size_t next_idx = static_cast<std::size_t>(t_);
        lambda_state_ = next_idx < conditioned_->size() ? (*conditioned_)[next_idx]
                                                        : conditioned_->back();
    } else {
        lambda_state_ = config_.arrivals.step(lambda_state_, rng);
    }
    Outcome outcome;
    outcome.drops = transition.expected_drops;
    outcome.reward = -transition.expected_drops;
    outcome.done = done();
    return outcome;
}

double rollout_return(MfcEnv& env, const UpperLevelPolicy& policy, Rng& rng, bool discounted) {
    double total = 0.0;
    double weight = 1.0;
    while (!env.done()) {
        const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), rng);
        const auto outcome = env.step(h, rng);
        total += weight * outcome.reward;
        if (discounted) {
            weight *= env.config().discount;
        }
    }
    return total;
}

} // namespace mflb
