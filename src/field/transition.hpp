/// \file transition.hpp
/// Exact discretization of the queue master equation over one synchronization
/// interval Δt: eqs. (20)-(28) of the paper.
///
/// During an epoch, a queue that started in state z receives packets at the
/// frozen rate λ_t(ν, z) (clients route on the stale epoch-start snapshot)
/// and serves at rate α. Its state therefore evolves as a birth-death CTMC on
/// Z = {0..B}; the extended generator (27) appends one bookkeeping dimension
/// integrating the expected packet drops Ḋ = λ_t(z) P_B. One matrix
/// exponential per starting state z produces both the transition row
/// P^z(Δt) ∈ P(Z) and the expected drops D^z(Δt), from which the
/// deterministic map ν_{t+1} = T_ν(ν_t, λ_t, h_t) (24) and the stage cost
/// D_t (26) follow.
///
/// Hot-path invariant: the discretizer owns a cached workspace (generator,
/// uniformization matrix, series buffers) that is rebuilt in place per
/// arrival rate, so the into-variants of `step`/`step_with_rates` perform
/// zero heap allocations in steady state (after the first step sized the
/// output). Consequence: an ExactDiscretization instance must not be shared
/// across threads; each rollout/solver owns its own (they all do).
#pragma once

#include "field/arrival_flow.hpp"
#include "field/decision_rule.hpp"
#include "math/expm.hpp"
#include "math/matrix.hpp"

#include <span>
#include <vector>

namespace mflb {

/// Homogeneous finite-buffer queue parameters of the paper's model.
struct QueueParams {
    int buffer = 5;            ///< B: maximum jobs per queue (|Z| = B + 1).
    double service_rate = 1.0; ///< α: exponential service rate.

    int num_states() const noexcept { return buffer + 1; }
};

/// Output of one exact mean-field transition step.
struct MeanFieldStep {
    std::vector<double> nu_next;        ///< ν_{t+1} per eq. (24).
    double expected_drops = 0.0;        ///< D_t per eq. (26), per queue.
    std::vector<double> drops_by_state; ///< D^z_t(Δt) per starting state, eq. (25).
    std::vector<double> rate_by_state;  ///< λ_t(ν, z) used in the generators.
};

/// Exact discretizer for a fixed (B, α, Δt).
class ExactDiscretization {
public:
    ExactDiscretization(QueueParams params, double dt);

    const QueueParams& params() const noexcept { return params_; }
    double dt() const noexcept { return dt_; }

    /// Full mean-field step: routing (18)-(19) + master equation (20)-(28).
    MeanFieldStep step(std::span<const double> nu, const DecisionRule& h,
                       double lambda_total) const;
    /// Allocation-free variant: writes into `out`, whose vectors are reused
    /// once sized. `out` must not alias `nu`.
    void step(std::span<const double> nu, const DecisionRule& h, double lambda_total,
              MeanFieldStep& out) const;

    /// Same but with per-state arrival rates given directly (used by the
    /// finite-M, infinite-N system where rates come from the empirical
    /// histogram, and by tests).
    MeanFieldStep step_with_rates(std::span<const double> nu,
                                  std::span<const double> rate_by_state) const;
    /// Allocation-free variant; `out` must not alias `nu`/`rate_by_state`.
    void step_with_rates(std::span<const double> nu, std::span<const double> rate_by_state,
                         MeanFieldStep& out) const;

    /// Transposed extended generator Q̄ of eq. (27) for one arrival rate:
    /// a (B+2)x(B+2) matrix; column space is [P(0..B), D].
    Matrix extended_generator(double arrival_rate) const;

    /// Propagates a single queue: returns the (B+2)-vector
    /// [P^z(Δt); D^z(Δt)] = exp(Q̄ Δt) [e_z; 0], eq. (28).
    std::vector<double> propagate_queue(int z0, double arrival_rate) const;

    /// Expected drops of a single queue over the epoch (last component of
    /// propagate_queue) — the per-queue loss used in Theorem 1's proof.
    double expected_queue_drops(int z0, double arrival_rate) const;

private:
    /// Rebuilds ws_.q as the extended generator for `arrival_rate`. The
    /// sparsity pattern is fixed, so only the sub/super-diagonals, diagonal,
    /// and drop row are overwritten — no allocation.
    void build_generator(double arrival_rate) const;
    /// Uniformized propagation exp(Q̄ Δt) e_{z0} into ws_.propagated via
    /// math/expm.hpp's expm_uniformized_action_into (shared arithmetic).
    void propagate_into(int z0, double arrival_rate) const;

    /// Cached buffers reused across calls; mutable because the stepping API
    /// is logically const. Instances are single-threaded by contract.
    struct Workspace {
        Matrix q;                       ///< extended generator (B+2)².
        UniformizationWorkspace uni;    ///< uniformized matrix + series terms.
        std::vector<double> e;          ///< basis vector e_{z0}.
        std::vector<double> propagated; ///< [P^z(Δt); D^z(Δt)].
        ArrivalFlow flow;               ///< routing buffers for step().
        std::vector<int> tuple;         ///< tuple decode scratch.
    };

    QueueParams params_;
    double dt_;
    mutable Workspace ws_;
};

} // namespace mflb
