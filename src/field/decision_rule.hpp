/// \file decision_rule.hpp
/// Lower-level decision rules h : Z^d -> P(U) — the enlarged actions of the
/// MFC MDP (Section 2.5 of the paper). A rule assigns, to every observed
/// tuple of d stale queue states, a probability over which of the d sampled
/// queues receives the client's jobs.
///
/// Reference rules from the paper:
///  - `mf_jsq`  : eq. (34), all mass uniformly on the argmin coordinates;
///  - `mf_rnd`  : eq. (35), uniform over all d coordinates;
///  - `greedy_softmax` : interpolating family h(u|z̄) ∝ exp(-β z̄_u) with
///    β -> ∞ recovering MF-JSQ and β = 0 recovering MF-RND. This is the
///    1-parameter "how greedy should we be given the staleness Δt" knob that
///    the learned policies effectively tune.
#pragma once

#include "field/tuple_space.hpp"

#include <span>
#include <vector>

namespace mflb {

/// Row-stochastic table over the tuple space: row = tuple index, col = u.
class DecisionRule {
public:
    /// Uniform rule (MF-RND).
    explicit DecisionRule(const TupleSpace& space);

    /// eq. (35): uniform over the d choices regardless of states.
    static DecisionRule mf_rnd(const TupleSpace& space);
    /// eq. (34): uniform over argmin_u z̄_u, zero elsewhere.
    static DecisionRule mf_jsq(const TupleSpace& space);
    /// Boltzmann rule h(u|z̄) ∝ exp(-beta * z̄_u); beta >= 0.
    static DecisionRule greedy_softmax(const TupleSpace& space, double beta);
    /// Per-row softmax of a flat logits vector of length size()*d — the
    /// "Gaussian logits + manual normalization" action parameterization used
    /// with PPO.
    static DecisionRule from_logits(const TupleSpace& space, std::span<const double> logits);
    /// Interprets `probs` (length size()*d) as raw per-row distributions;
    /// each row is clamped to be non-negative and renormalized.
    static DecisionRule from_probabilities(const TupleSpace& space, std::span<const double> probs);

    /// In-place counterparts for the epoch hot paths (the sharded backend
    /// realizes the policy's rule into a persistent table every epoch): same
    /// per-row arithmetic as the static factories bit for bit, zero heap
    /// traffic.
    void set_from_logits(std::span<const double> logits);
    void set_from_probabilities(std::span<const double> probs);

    const TupleSpace& space() const noexcept { return space_; }
    std::size_t rows() const noexcept { return space_.size(); }
    int choices() const noexcept { return space_.d(); }

    /// P(choose coordinate u | observed tuple with flat index `row`).
    double prob(std::size_t row, int u) const noexcept {
        return table_[row * static_cast<std::size_t>(space_.d()) + static_cast<std::size_t>(u)];
    }
    std::span<const double> row(std::size_t r) const noexcept;
    void set_row(std::size_t r, std::span<const double> probs);

    /// Flat view (row-major), length rows()*d.
    std::span<const double> flat() const noexcept { return table_; }

    /// True if every row is a probability vector within `tol`.
    bool is_valid(double tol = 1e-9) const noexcept;

    /// Max-abs difference to another rule on the same space.
    double max_abs_diff(const DecisionRule& other) const noexcept;

private:
    TupleSpace space_;
    std::vector<double> table_;
};

} // namespace mflb
