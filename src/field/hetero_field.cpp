#include "field/hetero_field.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace mflb {

ClassStateSpace::ClassStateSpace(std::vector<ServerClass> classes, int buffer)
    : classes_(std::move(classes)), buffer_(buffer) {
    if (classes_.empty()) {
        throw std::invalid_argument("ClassStateSpace: need at least one class");
    }
    if (buffer_ < 1) {
        throw std::invalid_argument("ClassStateSpace: buffer must be >= 1");
    }
    double total_weight = 0.0;
    for (const ServerClass& cls : classes_) {
        if (cls.service_rate <= 0.0 || cls.weight <= 0.0) {
            throw std::invalid_argument("ClassStateSpace: rates and weights must be positive");
        }
        total_weight += cls.weight;
    }
    if (std::abs(total_weight - 1.0) > 1e-9) {
        // Normalize so callers can pass raw counts.
        for (ServerClass& cls : classes_) {
            cls.weight /= total_weight;
        }
    }
}

std::size_t ClassStateSpace::index(int c, int z) const {
    if (c < 0 || c >= num_classes() || z < 0 || z > buffer_) {
        throw std::out_of_range("ClassStateSpace::index: out of range");
    }
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(fills()) +
           static_cast<std::size_t>(z);
}

std::vector<double> ClassStateSpace::initial_distribution() const {
    std::vector<double> nu(size(), 0.0);
    for (int c = 0; c < num_classes(); ++c) {
        nu[index(c, 0)] = classes_[static_cast<std::size_t>(c)].weight;
    }
    return nu;
}

namespace {
DecisionRule scored_argmin_rule(const ClassStateSpace& space, int d,
                                const std::function<double(int c, int z)>& score) {
    const TupleSpace tuples = space.tuple_space(d);
    DecisionRule rule(tuples);
    std::vector<int> tuple(static_cast<std::size_t>(d));
    std::vector<double> row(static_cast<std::size_t>(d));
    std::vector<double> values(static_cast<std::size_t>(d));
    for (std::size_t idx = 0; idx < tuples.size(); ++idx) {
        tuples.decode(idx, tuple);
        double best = 1e300;
        for (int u = 0; u < d; ++u) {
            const auto s = static_cast<std::size_t>(tuple[static_cast<std::size_t>(u)]);
            values[static_cast<std::size_t>(u)] = score(space.class_of(s), space.fill_of(s));
            best = std::min(best, values[static_cast<std::size_t>(u)]);
        }
        int ties = 0;
        for (int u = 0; u < d; ++u) {
            ties += (values[static_cast<std::size_t>(u)] == best) ? 1 : 0;
        }
        for (int u = 0; u < d; ++u) {
            row[static_cast<std::size_t>(u)] = values[static_cast<std::size_t>(u)] == best
                                                   ? 1.0 / static_cast<double>(ties)
                                                   : 0.0;
        }
        rule.set_row(idx, row);
    }
    return rule;
}
} // namespace

DecisionRule hetero_sed_rule(const ClassStateSpace& space, int d) {
    return scored_argmin_rule(space, d, [&](int c, int z) {
        return (static_cast<double>(z) + 1.0) / space.server_class(c).service_rate;
    });
}

DecisionRule hetero_jsq_rule(const ClassStateSpace& space, int d) {
    return scored_argmin_rule(space, d,
                              [](int /*c*/, int z) { return static_cast<double>(z); });
}

HeteroDiscretization::HeteroDiscretization(ClassStateSpace space, double dt)
    : space_(std::move(space)), dt_(dt) {
    per_class_.reserve(static_cast<std::size_t>(space_.num_classes()));
    for (int c = 0; c < space_.num_classes(); ++c) {
        per_class_.emplace_back(
            QueueParams{space_.buffer(), space_.server_class(c).service_rate}, dt);
    }
}

MeanFieldStep HeteroDiscretization::step(std::span<const double> nu, const DecisionRule& h,
                                         double lambda_total) const {
    if (nu.size() != space_.size()) {
        throw std::invalid_argument("HeteroDiscretization::step: nu size mismatch");
    }
    // Routing over the joint class-state space (eq. 18-19 verbatim on S).
    const ArrivalFlow flow = compute_arrival_flow(nu, h, lambda_total);

    MeanFieldStep result;
    result.nu_next.assign(nu.size(), 0.0);
    result.drops_by_state.assign(nu.size(), 0.0);
    result.rate_by_state = flow.rate_by_state;
    const auto fills = static_cast<std::size_t>(space_.fills());
    for (std::size_t s = 0; s < nu.size(); ++s) {
        if (nu[s] == 0.0) {
            continue;
        }
        const int c = space_.class_of(s);
        const int z = space_.fill_of(s);
        const std::vector<double> propagated =
            per_class_[static_cast<std::size_t>(c)].propagate_queue(z, flow.rate_by_state[s]);
        const std::size_t base = static_cast<std::size_t>(c) * fills;
        for (std::size_t z2 = 0; z2 < fills; ++z2) {
            result.nu_next[base + z2] += nu[s] * propagated[z2];
        }
        result.drops_by_state[s] = propagated[fills];
        result.expected_drops += nu[s] * propagated[fills];
    }
    return result;
}

HeteroMfcEnv::HeteroMfcEnv(Config config)
    : config_(std::move(config)),
      disc_(config_.space, config_.dt),
      tuple_space_(config_.space.tuple_space(config_.d)) {
    if (config_.horizon <= 0) {
        throw std::invalid_argument("HeteroMfcEnv: horizon must be positive");
    }
    nu_ = config_.space.initial_distribution();
}

void HeteroMfcEnv::reset(Rng& rng) {
    nu_ = config_.space.initial_distribution();
    lambda_state_ = config_.arrivals.sample_initial(rng);
    t_ = 0;
    conditioned_.reset();
}

void HeteroMfcEnv::reset_conditioned(std::vector<std::size_t> lambda_states) {
    if (lambda_states.empty()) {
        throw std::invalid_argument("HeteroMfcEnv: conditioned sequence must be non-empty");
    }
    nu_ = config_.space.initial_distribution();
    t_ = 0;
    lambda_state_ = lambda_states.front();
    conditioned_ = std::move(lambda_states);
}

HeteroMfcEnv::Outcome HeteroMfcEnv::step(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("HeteroMfcEnv::step: episode finished");
    }
    const MeanFieldStep transition = disc_.step(nu_, h, lambda_value());
    nu_ = transition.nu_next;
    ++t_;
    if (conditioned_) {
        const auto next = static_cast<std::size_t>(t_);
        lambda_state_ =
            next < conditioned_->size() ? (*conditioned_)[next] : conditioned_->back();
    } else {
        lambda_state_ = config_.arrivals.step(lambda_state_, rng);
    }
    Outcome outcome;
    outcome.drops = transition.expected_drops;
    outcome.reward = -transition.expected_drops;
    outcome.done = done();
    return outcome;
}

double hetero_rollout_drops(HeteroMfcEnv& env, const DecisionRule& h, Rng& rng) {
    double total = 0.0;
    while (!env.done()) {
        total += env.step(h, rng).drops;
    }
    return total;
}

} // namespace mflb
