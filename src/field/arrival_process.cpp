#include "field/arrival_process.hpp"

#include "math/simplex.hpp"

#include <stdexcept>

namespace mflb {

ArrivalProcess::ArrivalProcess(std::vector<double> levels, Matrix transition,
                               std::vector<double> initial)
    : levels_(std::move(levels)), transition_(std::move(transition)), initial_(std::move(initial)) {
    if (levels_.empty()) {
        throw std::invalid_argument("ArrivalProcess: need at least one level");
    }
    for (double level : levels_) {
        if (level <= 0.0) {
            throw std::invalid_argument("ArrivalProcess: levels must be positive");
        }
    }
    if (transition_.rows() != levels_.size() || transition_.cols() != levels_.size()) {
        throw std::invalid_argument("ArrivalProcess: transition shape mismatch");
    }
    for (std::size_t i = 0; i < transition_.rows(); ++i) {
        if (!is_probability_vector(transition_.row(i), 1e-9)) {
            throw std::invalid_argument("ArrivalProcess: transition rows must be stochastic");
        }
    }
    if (initial_.empty()) {
        initial_.assign(levels_.size(), 1.0 / static_cast<double>(levels_.size()));
    }
    if (initial_.size() != levels_.size() || !is_probability_vector(initial_, 1e-9)) {
        throw std::invalid_argument("ArrivalProcess: bad initial distribution");
    }
}

ArrivalProcess ArrivalProcess::paper_two_state(double lambda_high, double lambda_low,
                                               double p_high_to_low, double p_low_to_high) {
    // State 0 = high, state 1 = low, matching eqs. (32)-(33).
    Matrix p{{1.0 - p_high_to_low, p_high_to_low}, {p_low_to_high, 1.0 - p_low_to_high}};
    return ArrivalProcess({lambda_high, lambda_low}, std::move(p));
}

ArrivalProcess ArrivalProcess::constant(double rate) {
    return ArrivalProcess({rate}, Matrix{{1.0}});
}

std::size_t ArrivalProcess::sample_initial(Rng& rng) const {
    return rng.categorical(initial_);
}

std::size_t ArrivalProcess::step(std::size_t state, Rng& rng) const {
    return rng.categorical(transition_.row(state));
}

std::vector<double> ArrivalProcess::stationary(std::size_t iterations) const {
    std::vector<double> pi = initial_;
    for (std::size_t it = 0; it < iterations; ++it) {
        std::vector<double> next = transition_.multiply_left(pi);
        const double delta = l1_distance(pi, next);
        pi = std::move(next);
        if (delta < 1e-14) {
            break;
        }
    }
    return pi;
}

double ArrivalProcess::mean_rate() const {
    const auto pi = stationary();
    return expectation(pi, levels_);
}

} // namespace mflb
