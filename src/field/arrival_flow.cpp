#include "field/arrival_flow.hpp"

#include "math/simplex.hpp"
#include "math/vec_ops.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

double tuple_probability(const TupleSpace& space, std::span<const double> nu, std::size_t idx) {
    double p = 1.0;
    for (int k = 0; k < space.d(); ++k) {
        p *= nu[static_cast<std::size_t>(space.coordinate(idx, k))];
        if (p == 0.0) {
            return 0.0;
        }
    }
    return p;
}

void compute_arrival_flow_into(std::span<const double> nu, const DecisionRule& h,
                               double lambda_total, std::vector<int>& tuple_scratch,
                               ArrivalFlow& out) {
    const TupleSpace& space = h.space();
    const auto num_z = static_cast<std::size_t>(space.num_states());
    if (nu.size() != num_z) {
        throw std::invalid_argument("compute_arrival_flow: nu size mismatch");
    }
    out.inflow_by_state.assign(num_z, 0.0);

    // λ'(z) = λ Σ_{z̄} μ(z̄) Σ_u h(u|z̄) 1{z̄_u = z}. The tuple probability
    // μ(z̄) factorizes over coordinates, so we accumulate it on the fly.
    const int d = space.d();
    tuple_scratch.resize(static_cast<std::size_t>(d));
    std::vector<int>& tuple = tuple_scratch;
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        double mu = 1.0;
        for (int k = 0; k < d; ++k) {
            mu *= nu[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
        if (mu == 0.0) {
            continue;
        }
        for (int u = 0; u < d; ++u) {
            const double weight = mu * h.prob(idx, u);
            if (weight > 0.0) {
                out.inflow_by_state[static_cast<std::size_t>(tuple[static_cast<std::size_t>(u)])] +=
                    lambda_total * weight;
            }
        }
    }

    out.rate_by_state.assign(num_z, 0.0);
    for (std::size_t z = 0; z < num_z; ++z) {
        if (nu[z] > 0.0) {
            out.rate_by_state[z] = out.inflow_by_state[z] / nu[z]; // eq. (19)
        }
    }
}

void compute_routing_table_into(std::span<const double> hist, const DecisionRule& h,
                                std::span<int> tuple, std::span<double> suffix,
                                std::span<double> g) {
    const TupleSpace& space = h.space();
    const auto num_z = static_cast<std::size_t>(space.num_states());
    const int d = space.d();
    if (hist.size() != num_z || tuple.size() != static_cast<std::size_t>(d) ||
        suffix.size() != static_cast<std::size_t>(d) + 1 ||
        g.size() != num_z * static_cast<std::size_t>(d)) {
        throw std::invalid_argument("compute_routing_table_into: buffer size mismatch");
    }
    std::fill(g.begin(), g.end(), 0.0);
    suffix[static_cast<std::size_t>(d)] = 1.0;
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        // Per-coordinate leave-one-out weights Π_{i≠k} H(z̄_i), computed via
        // prefix/suffix products to stay O(d) per tuple.
        double prefix = 1.0;
        for (int k = d - 1; k >= 0; --k) {
            suffix[static_cast<std::size_t>(k)] =
                suffix[static_cast<std::size_t>(k) + 1] *
                hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
        for (int k = 0; k < d; ++k) {
            const double weight = prefix * suffix[static_cast<std::size_t>(k) + 1];
            if (weight > 0.0) {
                g[static_cast<std::size_t>(k) * num_z +
                  static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])] +=
                    weight * h.prob(idx, k);
            }
            prefix *= hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
    }
}

std::span<const double> fold_routing_table_rows(std::span<double> g, std::size_t num_z,
                                                int d) noexcept {
    // g[z] ← Σ_k g(k, z) accumulated in ascending k. Starting the sum at the
    // row-0 value and adding rows 1..d-1 is the same addition order as the
    // historical per-queue loop (total = (0 + g(0,z)) + g(1,z) + ... minus
    // the exact no-op leading zero), so the fold is bit-identical to it.
    double* __restrict row0 = g.data();
    for (int k = 1; k < d; ++k) {
        const double* __restrict rowk = g.data() + static_cast<std::size_t>(k) * num_z;
        for (std::size_t z = 0; z < num_z; ++z) {
            row0[z] += rowk[z];
        }
    }
    return g.first(num_z);
}

void prescale_destination_sums(std::span<const double> sums, double inv_m,
                               std::span<double> scaled) {
    if (scaled.size() != sums.size()) {
        throw std::invalid_argument("prescale_destination_sums: output size mismatch");
    }
    // One multiply per *state* instead of per queue: scaled[z] is the exact
    // double gather_scale would have produced for every queue in state z, so
    // downstream fused gathers against `scaled` are pure load + add loops
    // (no FMA-contractible multiply), bit-equal per element to the
    // materialized inv_m-scaled law.
    for (std::size_t z = 0; z < sums.size(); ++z) {
        scaled[z] = inv_m * sums[z];
    }
}

void compute_destination_law_into(std::span<const int> queue_states,
                                  std::span<const double> hist, const DecisionRule& h,
                                  std::span<int> tuple, std::span<double> suffix,
                                  std::span<double> g, std::span<double> dest_p) {
    if (dest_p.size() != queue_states.size()) {
        throw std::invalid_argument("compute_destination_law_into: dest_p size mismatch");
    }
    compute_routing_table_into(hist, h, tuple, suffix, g);
    const auto num_z = static_cast<std::size_t>(h.space().num_states());
    const std::span<const double> sums =
        fold_routing_table_rows(g, num_z, h.space().d());
    const double inv_m = 1.0 / static_cast<double>(queue_states.size());
    gather_scale(queue_states, sums, inv_m, dest_p);
}

void compute_destination_law_reference_into(std::span<const int> queue_states,
                                            std::span<const double> hist,
                                            const DecisionRule& h, std::span<int> tuple,
                                            std::span<double> suffix, std::span<double> g,
                                            std::span<double> dest_p) {
    if (dest_p.size() != queue_states.size()) {
        throw std::invalid_argument(
            "compute_destination_law_reference_into: dest_p size mismatch");
    }
    compute_routing_table_into(hist, h, tuple, suffix, g);
    const auto num_z = static_cast<std::size_t>(h.space().num_states());
    const int d = h.space().d();
    const double inv_m = 1.0 / static_cast<double>(queue_states.size());
    for (std::size_t j = 0; j < queue_states.size(); ++j) {
        double total = 0.0;
        for (int k = 0; k < d; ++k) {
            total += g[static_cast<std::size_t>(k) * num_z +
                       static_cast<std::size_t>(queue_states[j])];
        }
        dest_p[j] = inv_m * total;
    }
}

void sample_per_client_counts(std::span<const int> queue_states, const DecisionRule& h,
                              std::uint64_t num_clients, Rng& rng, std::span<int> sampled,
                              std::span<int> states, std::span<std::uint64_t> counts) {
    const int d = h.space().d();
    if (sampled.size() != static_cast<std::size_t>(d) ||
        states.size() != static_cast<std::size_t>(d) || counts.size() != queue_states.size()) {
        throw std::invalid_argument("sample_per_client_counts: buffer size mismatch");
    }
    std::fill(counts.begin(), counts.end(), 0);
    const std::uint64_t m = queue_states.size();
    for (std::uint64_t i = 0; i < num_clients; ++i) {
        for (int k = 0; k < d; ++k) {
            sampled[static_cast<std::size_t>(k)] = static_cast<int>(rng.uniform_below(m));
            states[static_cast<std::size_t>(k)] =
                queue_states[static_cast<std::size_t>(sampled[static_cast<std::size_t>(k)])];
        }
        const std::size_t row = h.space().index_of(states);
        const std::size_t u = rng.categorical(h.row(row));
        ++counts[static_cast<std::size_t>(sampled[u])];
    }
}

namespace {

template <class Weight>
double partition_shard_mass_impl(std::span<const Weight> weights,
                                 std::span<const std::size_t> shard_begin,
                                 std::span<double> mass) {
    if (shard_begin.size() != mass.size() + 1 || shard_begin.empty() ||
        shard_begin.front() != 0 || shard_begin.back() != weights.size()) {
        throw std::invalid_argument("partition_shard_mass: bad shard fence posts");
    }
    // Per-shard sums via the dispatched 4-lane kernel; the K-term total
    // stays a fixed-order serial sum (part of the determinism contract).
    double total = 0.0;
    for (std::size_t s = 0; s < mass.size(); ++s) {
        const double sum =
            vec_sum(weights.subspan(shard_begin[s], shard_begin[s + 1] - shard_begin[s]));
        mass[s] = sum;
        total += sum;
    }
    return total;
}

} // namespace

double partition_shard_mass(std::span<const double> weights,
                            std::span<const std::size_t> shard_begin,
                            std::span<double> mass) {
    return partition_shard_mass_impl(weights, shard_begin, mass);
}

double partition_shard_mass(std::span<const std::uint64_t> weights,
                            std::span<const std::size_t> shard_begin,
                            std::span<double> mass) {
    return partition_shard_mass_impl(weights, shard_begin, mass);
}

ArrivalFlow compute_arrival_flow(std::span<const double> nu, const DecisionRule& h,
                                 double lambda_total) {
    ArrivalFlow flow;
    std::vector<int> tuple;
    compute_arrival_flow_into(nu, h, lambda_total, tuple, flow);
    return flow;
}

std::vector<double> packet_destination_distribution(std::span<const double> nu,
                                                    const DecisionRule& h) {
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 1.0);
    return normalized(flow.inflow_by_state);
}

} // namespace mflb
