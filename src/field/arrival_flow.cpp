#include "field/arrival_flow.hpp"

#include "math/simplex.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

double tuple_probability(const TupleSpace& space, std::span<const double> nu, std::size_t idx) {
    double p = 1.0;
    for (int k = 0; k < space.d(); ++k) {
        p *= nu[static_cast<std::size_t>(space.coordinate(idx, k))];
        if (p == 0.0) {
            return 0.0;
        }
    }
    return p;
}

void compute_arrival_flow_into(std::span<const double> nu, const DecisionRule& h,
                               double lambda_total, std::vector<int>& tuple_scratch,
                               ArrivalFlow& out) {
    const TupleSpace& space = h.space();
    const auto num_z = static_cast<std::size_t>(space.num_states());
    if (nu.size() != num_z) {
        throw std::invalid_argument("compute_arrival_flow: nu size mismatch");
    }
    out.inflow_by_state.assign(num_z, 0.0);

    // λ'(z) = λ Σ_{z̄} μ(z̄) Σ_u h(u|z̄) 1{z̄_u = z}. The tuple probability
    // μ(z̄) factorizes over coordinates, so we accumulate it on the fly.
    const int d = space.d();
    tuple_scratch.resize(static_cast<std::size_t>(d));
    std::vector<int>& tuple = tuple_scratch;
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        double mu = 1.0;
        for (int k = 0; k < d; ++k) {
            mu *= nu[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
        if (mu == 0.0) {
            continue;
        }
        for (int u = 0; u < d; ++u) {
            const double weight = mu * h.prob(idx, u);
            if (weight > 0.0) {
                out.inflow_by_state[static_cast<std::size_t>(tuple[static_cast<std::size_t>(u)])] +=
                    lambda_total * weight;
            }
        }
    }

    out.rate_by_state.assign(num_z, 0.0);
    for (std::size_t z = 0; z < num_z; ++z) {
        if (nu[z] > 0.0) {
            out.rate_by_state[z] = out.inflow_by_state[z] / nu[z]; // eq. (19)
        }
    }
}

void compute_routing_table_into(std::span<const double> hist, const DecisionRule& h,
                                std::span<int> tuple, std::span<double> suffix,
                                std::span<double> g) {
    const TupleSpace& space = h.space();
    const auto num_z = static_cast<std::size_t>(space.num_states());
    const int d = space.d();
    if (hist.size() != num_z || tuple.size() != static_cast<std::size_t>(d) ||
        suffix.size() != static_cast<std::size_t>(d) + 1 ||
        g.size() != num_z * static_cast<std::size_t>(d)) {
        throw std::invalid_argument("compute_routing_table_into: buffer size mismatch");
    }
    std::fill(g.begin(), g.end(), 0.0);
    suffix[static_cast<std::size_t>(d)] = 1.0;
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        // Per-coordinate leave-one-out weights Π_{i≠k} H(z̄_i), computed via
        // prefix/suffix products to stay O(d) per tuple.
        double prefix = 1.0;
        for (int k = d - 1; k >= 0; --k) {
            suffix[static_cast<std::size_t>(k)] =
                suffix[static_cast<std::size_t>(k) + 1] *
                hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
        for (int k = 0; k < d; ++k) {
            const double weight = prefix * suffix[static_cast<std::size_t>(k) + 1];
            if (weight > 0.0) {
                g[static_cast<std::size_t>(k) * num_z +
                  static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])] +=
                    weight * h.prob(idx, k);
            }
            prefix *= hist[static_cast<std::size_t>(tuple[static_cast<std::size_t>(k)])];
        }
    }
}

ArrivalFlow compute_arrival_flow(std::span<const double> nu, const DecisionRule& h,
                                 double lambda_total) {
    ArrivalFlow flow;
    std::vector<int> tuple;
    compute_arrival_flow_into(nu, h, lambda_total, tuple, flow);
    return flow;
}

std::vector<double> packet_destination_distribution(std::span<const double> nu,
                                                    const DecisionRule& h) {
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 1.0);
    return normalized(flow.inflow_by_state);
}

} // namespace mflb
