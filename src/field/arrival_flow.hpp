/// \file arrival_flow.hpp
/// Mean-field packet routing: eqs. (16)-(19) of the paper.
///
/// Given the queue-state distribution ν ∈ P(Z) and a decision rule h, the
/// agent state distribution is the product measure μ = ν^{⊗d} (16); together
/// with h it induces the state-action distribution G = μ ⊗ h (17); Poisson
/// thinning then yields the per-*state* packet inflow
///     λ'(z) = λ ∫ 1{z̄_u = z} G(dz̄, du)                       (18)
/// and the equivalent per-*queue* arrival rate for queues in state z
///     λ(z) = λ'(z) / ν(z).                                    (19)
#pragma once

#include "field/decision_rule.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace mflb {

/// Result of the mean-field routing computation for one decision epoch.
struct ArrivalFlow {
    /// λ'(z): total packet inflow rate (per queue count M) into state class z.
    std::vector<double> inflow_by_state;
    /// λ(z) = λ'(z)/ν(z): arrival rate seen by one queue currently in state z;
    /// zero where ν(z) = 0 (no queue occupies the class, rate is immaterial).
    std::vector<double> rate_by_state;
};

/// Computes eq. (18)-(19). `nu` must be a distribution over Z with
/// |Z| = h.space().num_states(); `lambda_total` is the modulated rate λ_t.
/// Complexity O(|Z|^d · d).
ArrivalFlow compute_arrival_flow(std::span<const double> nu, const DecisionRule& h,
                                 double lambda_total);

/// Allocation-free variant for the simulation hot paths: writes into `out`
/// (whose vectors are reused when already |Z|-sized) and borrows
/// `tuple_scratch` as the d-length decode buffer.
void compute_arrival_flow_into(std::span<const double> nu, const DecisionRule& h,
                               double lambda_total, std::vector<int>& tuple_scratch,
                               ArrivalFlow& out);

/// Per-coordinate mean routing probabilities of one client under rule `h`
/// when the d sampled queue states are i.i.d. from `hist`:
///     g(k, z) = E[ h(k | z̄) · 1{z̄_k = z} ] / hist(z) · hist(z)
/// i.e. g[k * |Z| + z] accumulates, over all tuples with z̄_k = z, the
/// leave-one-out weight Π_{i≠k} hist(z̄_i) times h(k | z̄). A queue currently
/// in state z is then a client's destination with probability
/// (1/M) Σ_k g(k, z) — the exact per-client destination law used by both the
/// epoch-synchronous `FiniteSystem` aggregation and the event-driven
/// `DesSystem`. Allocation-free: `tuple` (d), `suffix` (d + 1) and `g`
/// (d · |Z|) are caller-owned scratch/output buffers.
void compute_routing_table_into(std::span<const double> hist, const DecisionRule& h,
                                std::span<int> tuple, std::span<double> suffix,
                                std::span<double> g);

/// Folds the routing table `g` (d rows of num_z) into its first row:
/// g[z] ← Σ_k g(k, z), accumulated in ascending k — the same addition order
/// as the historical per-queue loop (total = g(0,z) + g(1,z) + ...), so the
/// folded per-state sums are bit-identical to what that loop produced.
/// Returns a view of the folded first row. O(d·|Z|) once, instead of
/// O(M·d) gathers.
std::span<const double> fold_routing_table_rows(std::span<double> g, std::size_t num_z,
                                                int d) noexcept;

/// scaled[z] = inv_m * sums[z] — folds the 1/M factor of the destination law
/// into a |Z|-sized lookup table, so the fused gather kernels (`gather_sum`,
/// `gather_prefix_sum`) that read it are pure load + add loops. Each entry is
/// the exact product `gather_scale` computes per queue, so gathers against
/// the prescaled table are bit-equal to the materialized per-queue law.
/// `scaled` must have sums.size() elements (aliasing sums is allowed).
void prescale_destination_sums(std::span<const double> sums, double inv_m,
                               std::span<double> scaled);

/// Per-queue destination law under rule `h` given the frozen snapshot: fills
/// `dest_p[j] = (1/M) Σ_k g(k, z_j)` — the exact probability that one
/// client's (equivalently, by Poisson thinning, one arriving job's) routing
/// decision lands on queue j when the d sampled queue states are i.i.d. from
/// `hist`. One `compute_routing_table_into` pass, a `fold_routing_table_rows`
/// over the d·|Z| table, then a vectorized O(M) `gather_scale` — bit-identical
/// to the historical O(M·d) per-queue scan (same addition order per state),
/// which survives as `compute_destination_law_reference_into` for the kernel
/// agreement tests. Shared by the epoch-synchronous `FiniteSystem`
/// aggregation and both event-driven backends. `tuple` (d), `suffix` (d + 1),
/// `g` (d · |Z|) are caller-owned scratch; `queue_states` and `dest_p` have
/// one entry per queue. Postcondition: `g`'s first row holds the folded
/// per-state sums (callers treating `g` as per-coordinate rows must re-run
/// `compute_routing_table_into`).
void compute_destination_law_into(std::span<const int> queue_states,
                                  std::span<const double> hist, const DecisionRule& h,
                                  std::span<int> tuple, std::span<double> suffix,
                                  std::span<double> g, std::span<double> dest_p);

/// Scalar reference path of the destination law (the pre-vectorization
/// per-queue O(M·d) scan, g left untouched); agreement pinned in
/// tests/test_vec_kernels.cpp.
void compute_destination_law_reference_into(std::span<const int> queue_states,
                                            std::span<const double> hist,
                                            const DecisionRule& h, std::span<int> tuple,
                                            std::span<double> suffix, std::span<double> g,
                                            std::span<double> dest_p);

/// Literal Algorithm 1 client sampling on the frozen snapshot (the
/// `PerClient` model): each of the N clients draws d queues uniformly at
/// random, applies rule `h` to their states, and the chosen queue's count
/// is incremented. `sampled`/`states` are d-length scratch; `counts` (one
/// per queue) is zeroed first. The RNG draw order (d `uniform_below`, one
/// `categorical`, per client) is part of the simulators' equivalence
/// contract — all three backends share this one implementation so it
/// cannot diverge.
void sample_per_client_counts(std::span<const int> queue_states, const DecisionRule& h,
                              std::uint64_t num_clients, Rng& rng, std::span<int> sampled,
                              std::span<int> states, std::span<std::uint64_t> counts);

/// Per-shard routing-mass partition: `mass[s] = Σ_{j ∈ [begin[s], begin[s+1])}
/// weights[j]` for the K shards delimited by the K+1 fence-post offsets
/// `shard_begin`. By the Poisson thinning property, the aggregated arrival
/// stream of rate M·λ_t splits *exactly* into independent per-shard streams
/// of rate M·λ_t · mass[s] / Σ mass — this is the quantity the sharded DES
/// backend hands each shard at the epoch barrier. Per-shard sums use the
/// dispatched `vec_sum` (fixed 4-lane split; exact for integer weights,
/// 1e-12 vs the serial sum otherwise); the K-term total stays a fixed-order
/// serial sum. Returns Σ mass.
double partition_shard_mass(std::span<const double> weights,
                            std::span<const std::size_t> shard_begin,
                            std::span<double> mass);
/// Overload for integer weights (finite-N client counts).
double partition_shard_mass(std::span<const std::uint64_t> weights,
                            std::span<const std::size_t> shard_begin,
                            std::span<double> mass);

/// Probability μ(z̄) = Π_k ν(z̄_k) of an agent observing tuple index `idx`.
double tuple_probability(const TupleSpace& space, std::span<const double> nu, std::size_t idx);

/// Destination-state distribution of a single packet: probability that a
/// packet is routed to *some* queue in state z, i.e. λ'(z)/λ. Sums to one.
std::vector<double> packet_destination_distribution(std::span<const double> nu,
                                                    const DecisionRule& h);

} // namespace mflb
