/// \file arrival_flow.hpp
/// Mean-field packet routing: eqs. (16)-(19) of the paper.
///
/// Given the queue-state distribution ν ∈ P(Z) and a decision rule h, the
/// agent state distribution is the product measure μ = ν^{⊗d} (16); together
/// with h it induces the state-action distribution G = μ ⊗ h (17); Poisson
/// thinning then yields the per-*state* packet inflow
///     λ'(z) = λ ∫ 1{z̄_u = z} G(dz̄, du)                       (18)
/// and the equivalent per-*queue* arrival rate for queues in state z
///     λ(z) = λ'(z) / ν(z).                                    (19)
#pragma once

#include "field/decision_rule.hpp"

#include <span>
#include <vector>

namespace mflb {

/// Result of the mean-field routing computation for one decision epoch.
struct ArrivalFlow {
    /// λ'(z): total packet inflow rate (per queue count M) into state class z.
    std::vector<double> inflow_by_state;
    /// λ(z) = λ'(z)/ν(z): arrival rate seen by one queue currently in state z;
    /// zero where ν(z) = 0 (no queue occupies the class, rate is immaterial).
    std::vector<double> rate_by_state;
};

/// Computes eq. (18)-(19). `nu` must be a distribution over Z with
/// |Z| = h.space().num_states(); `lambda_total` is the modulated rate λ_t.
/// Complexity O(|Z|^d · d).
ArrivalFlow compute_arrival_flow(std::span<const double> nu, const DecisionRule& h,
                                 double lambda_total);

/// Allocation-free variant for the simulation hot paths: writes into `out`
/// (whose vectors are reused when already |Z|-sized) and borrows
/// `tuple_scratch` as the d-length decode buffer.
void compute_arrival_flow_into(std::span<const double> nu, const DecisionRule& h,
                               double lambda_total, std::vector<int>& tuple_scratch,
                               ArrivalFlow& out);

/// Per-coordinate mean routing probabilities of one client under rule `h`
/// when the d sampled queue states are i.i.d. from `hist`:
///     g(k, z) = E[ h(k | z̄) · 1{z̄_k = z} ] / hist(z) · hist(z)
/// i.e. g[k * |Z| + z] accumulates, over all tuples with z̄_k = z, the
/// leave-one-out weight Π_{i≠k} hist(z̄_i) times h(k | z̄). A queue currently
/// in state z is then a client's destination with probability
/// (1/M) Σ_k g(k, z) — the exact per-client destination law used by both the
/// epoch-synchronous `FiniteSystem` aggregation and the event-driven
/// `DesSystem`. Allocation-free: `tuple` (d), `suffix` (d + 1) and `g`
/// (d · |Z|) are caller-owned scratch/output buffers.
void compute_routing_table_into(std::span<const double> hist, const DecisionRule& h,
                                std::span<int> tuple, std::span<double> suffix,
                                std::span<double> g);

/// Probability μ(z̄) = Π_k ν(z̄_k) of an agent observing tuple index `idx`.
double tuple_probability(const TupleSpace& space, std::span<const double> nu, std::size_t idx);

/// Destination-state distribution of a single packet: probability that a
/// packet is routed to *some* queue in state z, i.e. λ'(z)/λ. Sums to one.
std::vector<double> packet_destination_distribution(std::span<const double> nu,
                                                    const DecisionRule& h);

} // namespace mflb
