#include "field/tuple_space.hpp"

#include <stdexcept>

namespace mflb {

TupleSpace::TupleSpace(int num_states, int d) : num_states_(num_states), d_(d) {
    if (num_states <= 0 || d <= 0) {
        throw std::invalid_argument("TupleSpace: num_states and d must be positive");
    }
    size_ = 1;
    strides_.resize(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k) {
        strides_[static_cast<std::size_t>(k)] = size_;
        const std::size_t next = size_ * static_cast<std::size_t>(num_states);
        if (next / static_cast<std::size_t>(num_states) != size_) {
            throw std::invalid_argument("TupleSpace: |Z|^d overflows");
        }
        size_ = next;
    }
}

std::size_t TupleSpace::index_of(std::span<const int> tuple) const {
    if (tuple.size() != static_cast<std::size_t>(d_)) {
        throw std::invalid_argument("TupleSpace::index_of: wrong tuple arity");
    }
    std::size_t index = 0;
    for (int k = 0; k < d_; ++k) {
        const int z = tuple[static_cast<std::size_t>(k)];
        if (z < 0 || z >= num_states_) {
            throw std::out_of_range("TupleSpace::index_of: coordinate out of range");
        }
        index += static_cast<std::size_t>(z) * strides_[static_cast<std::size_t>(k)];
    }
    return index;
}

void TupleSpace::decode(std::size_t index, std::span<int> out) const {
    if (index >= size_) {
        throw std::out_of_range("TupleSpace::decode: index out of range");
    }
    if (out.size() != static_cast<std::size_t>(d_)) {
        throw std::invalid_argument("TupleSpace::decode: wrong output arity");
    }
    for (int k = 0; k < d_; ++k) {
        out[static_cast<std::size_t>(k)] =
            static_cast<int>(index % static_cast<std::size_t>(num_states_));
        index /= static_cast<std::size_t>(num_states_);
    }
}

std::vector<int> TupleSpace::tuple_at(std::size_t index) const {
    std::vector<int> tuple(static_cast<std::size_t>(d_));
    decode(index, tuple);
    return tuple;
}

int TupleSpace::coordinate(std::size_t index, int k) const noexcept {
    return static_cast<int>((index / strides_[static_cast<std::size_t>(k)]) %
                            static_cast<std::size_t>(num_states_));
}

} // namespace mflb
