/// \file hetero_field.hpp
/// Heterogeneous-server mean-field model — the extension the paper's
/// discussion names first ("one straightforward extension would be to use
/// heterogeneous service rates").
///
/// Servers come in a finite set of classes c with service rate α_c and
/// population weight w_c. The anonymous queue state becomes the pair
/// s = (c, z) ∈ S = C × Z, the mean-field state is ν ∈ P(S) with fixed
/// class marginals ν(c, ·) = w_c (classes never change), and everything
/// else of the homogeneous model carries over verbatim: clients observe
/// d sampled pairs, decision rules are h : S^d → P(U), the routing flow is
/// eq. (18)-(19) over S, and the exact discretization runs one birth-death
/// generator per class-state with the class's service rate.
#pragma once

#include "field/arrival_flow.hpp"
#include "field/arrival_process.hpp"
#include "field/decision_rule.hpp"
#include "field/transition.hpp"
#include "support/rng.hpp"

#include <optional>
#include <vector>

namespace mflb {

/// One server class: exponential rate and fraction of the fleet.
struct ServerClass {
    double service_rate = 1.0;
    double weight = 1.0;
};

/// Flat enumeration of S = C × Z with s = c * (B+1) + z.
class ClassStateSpace {
public:
    ClassStateSpace(std::vector<ServerClass> classes, int buffer);

    int num_classes() const noexcept { return static_cast<int>(classes_.size()); }
    int buffer() const noexcept { return buffer_; }
    int fills() const noexcept { return buffer_ + 1; }
    std::size_t size() const noexcept {
        return classes_.size() * static_cast<std::size_t>(fills());
    }

    std::size_t index(int c, int z) const;
    int class_of(std::size_t s) const noexcept {
        return static_cast<int>(s / static_cast<std::size_t>(fills()));
    }
    int fill_of(std::size_t s) const noexcept {
        return static_cast<int>(s % static_cast<std::size_t>(fills()));
    }
    const ServerClass& server_class(int c) const { return classes_.at(static_cast<std::size_t>(c)); }

    /// ν_0: every queue empty, classes at their weights.
    std::vector<double> initial_distribution() const;

    /// Tuple space over S for decision rules.
    TupleSpace tuple_space(int d) const { return TupleSpace(static_cast<int>(size()), d); }

private:
    std::vector<ServerClass> classes_;
    int buffer_;
};

/// SED rule over class-state tuples: all mass on argmin (z_u + 1) / α_{c_u}.
DecisionRule hetero_sed_rule(const ClassStateSpace& space, int d);
/// JSQ rule over class-state tuples (fill only, ignores rates).
DecisionRule hetero_jsq_rule(const ClassStateSpace& space, int d);

/// Exact discretizer with per-class service rates (generalizes
/// ExactDiscretization, which it reuses per class).
class HeteroDiscretization {
public:
    HeteroDiscretization(ClassStateSpace space, double dt);

    const ClassStateSpace& space() const noexcept { return space_; }
    double dt() const noexcept { return dt_; }

    /// One mean-field step over P(S): routing by eq. (18)-(19) on S, then
    /// one per-class-state birth-death propagation.
    MeanFieldStep step(std::span<const double> nu, const DecisionRule& h,
                       double lambda_total) const;

private:
    ClassStateSpace space_;
    double dt_;
    std::vector<ExactDiscretization> per_class_;
};

/// Heterogeneous MFC MDP: identical control structure to MfcEnv, states are
/// (ν ∈ P(S), λ).
class HeteroMfcEnv {
public:
    struct Config {
        ClassStateSpace space;
        int d = 2;
        double dt = 1.0;
        ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
        int horizon = 100;
        double discount = 0.99;
    };

    explicit HeteroMfcEnv(Config config);

    const Config& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return tuple_space_; }

    void reset(Rng& rng);
    void reset_conditioned(std::vector<std::size_t> lambda_states);
    bool done() const noexcept { return t_ >= config_.horizon; }
    std::span<const double> nu() const noexcept { return nu_; }
    std::size_t lambda_state() const noexcept { return lambda_state_; }
    double lambda_value() const { return config_.arrivals.level(lambda_state_); }

    struct Outcome {
        double drops = 0.0;
        double reward = 0.0;
        bool done = false;
    };
    Outcome step(const DecisionRule& h, Rng& rng);

private:
    Config config_;
    HeteroDiscretization disc_;
    TupleSpace tuple_space_;
    std::vector<double> nu_;
    std::size_t lambda_state_ = 0;
    int t_ = 0;
    std::optional<std::vector<std::size_t>> conditioned_;
};

/// Total drops of a fixed rule over one conditioned or sampled episode.
double hetero_rollout_drops(HeteroMfcEnv& env, const DecisionRule& h, Rng& rng);

} // namespace mflb
