#include "field/decision_rule.hpp"

#include "math/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mflb {

DecisionRule::DecisionRule(const TupleSpace& space)
    : space_(space),
      table_(space.size() * static_cast<std::size_t>(space.d()),
             1.0 / static_cast<double>(space.d())) {}

DecisionRule DecisionRule::mf_rnd(const TupleSpace& space) {
    return DecisionRule(space);
}

DecisionRule DecisionRule::mf_jsq(const TupleSpace& space) {
    DecisionRule rule(space);
    const int d = space.d();
    std::vector<int> tuple(static_cast<std::size_t>(d));
    std::vector<double> row(static_cast<std::size_t>(d));
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        const int shortest = *std::min_element(tuple.begin(), tuple.end());
        int ties = 0;
        for (int z : tuple) {
            ties += (z == shortest) ? 1 : 0;
        }
        for (int u = 0; u < d; ++u) {
            row[static_cast<std::size_t>(u)] =
                tuple[static_cast<std::size_t>(u)] == shortest ? 1.0 / static_cast<double>(ties)
                                                               : 0.0;
        }
        rule.set_row(idx, row);
    }
    return rule;
}

DecisionRule DecisionRule::greedy_softmax(const TupleSpace& space, double beta) {
    if (beta < 0.0) {
        throw std::invalid_argument("DecisionRule::greedy_softmax: beta must be >= 0");
    }
    DecisionRule rule(space);
    const int d = space.d();
    std::vector<int> tuple(static_cast<std::size_t>(d));
    std::vector<double> logits(static_cast<std::size_t>(d));
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        for (int u = 0; u < d; ++u) {
            logits[static_cast<std::size_t>(u)] = -beta * tuple[static_cast<std::size_t>(u)];
        }
        rule.set_row(idx, softmax(logits));
    }
    return rule;
}

DecisionRule DecisionRule::from_logits(const TupleSpace& space, std::span<const double> logits) {
    DecisionRule rule(space);
    rule.set_from_logits(logits);
    return rule;
}

DecisionRule DecisionRule::from_probabilities(const TupleSpace& space,
                                              std::span<const double> probs) {
    DecisionRule rule(space);
    rule.set_from_probabilities(probs);
    return rule;
}

void DecisionRule::set_from_logits(std::span<const double> logits) {
    if (logits.size() != table_.size()) {
        throw std::invalid_argument("DecisionRule::set_from_logits: wrong logits length");
    }
    const std::size_t d = static_cast<std::size_t>(space_.d());
    for (std::size_t idx = 0; idx < space_.size(); ++idx) {
        // Stable per-row softmax, the same arithmetic (and order) as
        // math/simplex.hpp's softmax(), writing straight into the table.
        const std::span<const double> in = logits.subspan(idx * d, d);
        const std::span<double> row(table_.data() + idx * d, d);
        const double peak = *std::max_element(in.begin(), in.end());
        double sum = 0.0;
        for (std::size_t u = 0; u < d; ++u) {
            row[u] = std::exp(in[u] - peak);
            sum += row[u];
        }
        for (std::size_t u = 0; u < d; ++u) {
            row[u] /= sum;
        }
    }
}

void DecisionRule::set_from_probabilities(std::span<const double> probs) {
    if (probs.size() != table_.size()) {
        throw std::invalid_argument("DecisionRule::set_from_probabilities: wrong length");
    }
    const std::size_t d = static_cast<std::size_t>(space_.d());
    for (std::size_t idx = 0; idx < space_.size(); ++idx) {
        const std::span<double> row(table_.data() + idx * d, d);
        for (std::size_t u = 0; u < d; ++u) {
            row[u] = std::max(0.0, probs[idx * d + u]);
        }
        normalize_in_place(row);
    }
}

std::span<const double> DecisionRule::row(std::size_t r) const noexcept {
    const std::size_t d = static_cast<std::size_t>(space_.d());
    return std::span<const double>(table_.data() + r * d, d);
}

void DecisionRule::set_row(std::size_t r, std::span<const double> probs) {
    const std::size_t d = static_cast<std::size_t>(space_.d());
    if (probs.size() != d) {
        throw std::invalid_argument("DecisionRule::set_row: wrong row length");
    }
    std::copy(probs.begin(), probs.end(), table_.begin() + static_cast<std::ptrdiff_t>(r * d));
}

bool DecisionRule::is_valid(double tol) const noexcept {
    for (std::size_t r = 0; r < rows(); ++r) {
        if (!is_probability_vector(row(r), tol)) {
            return false;
        }
    }
    return true;
}

double DecisionRule::max_abs_diff(const DecisionRule& other) const noexcept {
    double best = 0.0;
    const std::size_t n = std::min(table_.size(), other.table_.size());
    for (std::size_t i = 0; i < n; ++i) {
        best = std::max(best, std::abs(table_[i] - other.table_[i]));
    }
    return best;
}

} // namespace mflb
