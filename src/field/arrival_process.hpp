/// \file arrival_process.hpp
/// Markov-modulated arrival-rate process λ_t, eq. (1) of the paper. The rate
/// parameter switches between a finite set of levels Λ according to a
/// discrete-time Markov chain sampled once per decision epoch; the paper's
/// experiments use two levels (λ_h, λ_l) = (0.9, 0.6) with switching
/// probabilities (32)-(33), but any finite chain is supported (e.g. a
/// day/night/burst 3-level chain in the edge-computing example).
#pragma once

#include "math/matrix.hpp"
#include "support/rng.hpp"

#include <vector>

namespace mflb {

/// Finite-state modulating chain for the per-queue arrival rate λ_t.
class ArrivalProcess {
public:
    /// \param levels      rate value of each modulation state (all > 0).
    /// \param transition  row-stochastic transition matrix over states.
    /// \param initial     initial distribution; empty means uniform.
    ArrivalProcess(std::vector<double> levels, Matrix transition,
                   std::vector<double> initial = {});

    /// The paper's two-level chain: eqs. (32)-(33) with
    /// P(l|h) = 0.2, P(h|l) = 0.5 and λ_0 ~ Unif({λ_h, λ_l}).
    static ArrivalProcess paper_two_state(double lambda_high = 0.9, double lambda_low = 0.6,
                                          double p_high_to_low = 0.2, double p_low_to_high = 0.5);

    /// Degenerate single-level process (no modulation).
    static ArrivalProcess constant(double rate);

    std::size_t num_states() const noexcept { return levels_.size(); }
    double level(std::size_t state) const { return levels_.at(state); }
    const Matrix& transition() const noexcept { return transition_; }

    /// Samples the initial modulation state.
    std::size_t sample_initial(Rng& rng) const;
    /// Samples the next modulation state given the current one.
    std::size_t step(std::size_t state, Rng& rng) const;

    /// Stationary distribution via power iteration (used for analysis and
    /// to report the long-run offered load in the bench output).
    std::vector<double> stationary(std::size_t iterations = 10000) const;
    /// Long-run mean arrival rate under the stationary distribution.
    double mean_rate() const;

private:
    std::vector<double> levels_;
    Matrix transition_;
    std::vector<double> initial_;
};

} // namespace mflb
