/// \file tuple_space.hpp
/// The anonymous agent state space Z^d of the mean-field model (Section 2.1:
/// each client samples d queues per epoch and observes their stale
/// snapshot states), so its state is a tuple z̄ ∈ Z^d with Z = {0, ..., B}.
/// This class provides a dense bijection between tuples and flat indices so
/// decision rules h : Z^d -> P(U) can be stored as row-stochastic matrices.
/// \see field/decision_rule.hpp for the rules indexed by this space.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mflb {

/// Dense enumeration of Z^d, Z = {0, ..., num_states-1}.
class TupleSpace {
public:
    /// \param num_states |Z| = B + 1 queue fill levels.
    /// \param d          number of sampled queues per client (power-of-d).
    TupleSpace(int num_states, int d);

    int num_states() const noexcept { return num_states_; }
    int d() const noexcept { return d_; }
    /// Total number of tuples |Z|^d.
    std::size_t size() const noexcept { return size_; }

    /// Flat index of a tuple; coordinate 0 varies fastest.
    std::size_t index_of(std::span<const int> tuple) const;
    /// Inverse of index_of; writes d coordinates into `out`.
    void decode(std::size_t index, std::span<int> out) const;
    /// Convenience allocating decode.
    std::vector<int> tuple_at(std::size_t index) const;

    /// Value of coordinate k of the tuple with the given flat index, without
    /// materializing the whole tuple.
    int coordinate(std::size_t index, int k) const noexcept;

    bool operator==(const TupleSpace& other) const noexcept {
        return num_states_ == other.num_states_ && d_ == other.d_;
    }

private:
    int num_states_;
    int d_;
    std::size_t size_;
    std::vector<std::size_t> strides_;
};

} // namespace mflb
