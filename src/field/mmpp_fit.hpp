/// \file mmpp_fit.hpp
/// Estimating the arrival modulation of eq. (1) — the Markov-modulated
/// Poisson arrival rate λ_t — from observed traffic. The paper remarks that
/// the modulation "could be estimated from a real system"; this module
/// provides that estimator so the pipeline runs end-to-end from a traffic
/// trace to a trained policy (see examples/trace_to_policy.cpp).
///
/// Model: per decision epoch t, the total number of observed arrivals is
///     y_t ~ Poisson(M · λ_{s_t} · Δt),
/// where s_t follows a hidden K-state Markov chain — a Poisson hidden Markov
/// model. `fit_arrival_process` runs Baum-Welch (EM) with scaled
/// forward-backward recursions and returns both the fitted ArrivalProcess
/// and diagnostics (log-likelihood trace, responsibilities).
#pragma once

#include "field/arrival_process.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// EM configuration for the Poisson-HMM fit.
struct MmppFitConfig {
    std::size_t num_states = 2;   ///< K hidden levels.
    std::size_t max_iterations = 200;
    double tolerance = 1e-8;      ///< stop when log-likelihood gain is below.
    std::uint64_t seed = 1;       ///< initialization seed.
};

/// Result of the EM fit.
struct MmppFitResult {
    std::vector<double> levels;       ///< fitted λ per hidden state (sorted desc).
    Matrix transition;                ///< fitted row-stochastic chain.
    std::vector<double> initial;      ///< fitted initial distribution.
    std::vector<double> log_likelihood_trace; ///< per EM iteration.
    std::size_t iterations = 0;

    /// Converts to the library's ArrivalProcess (levels must be positive).
    ArrivalProcess to_arrival_process() const;
};

/// Fits a K-state Poisson-HMM to per-epoch arrival counts `counts`, where
/// the Poisson mean of state k is `num_queues * level_k * dt`. Requires at
/// least 2 observations. EM is initialized from quantile-spread levels with
/// a sticky transition prior, seeded by `config.seed`.
MmppFitResult fit_arrival_process(std::span<const std::uint64_t> counts, double num_queues,
                                  double dt, const MmppFitConfig& config = {});

/// Generates a synthetic per-epoch arrival-count trace from a known process
/// (for tests and demos): counts_t ~ Poisson(M · λ_{s_t} · Δt).
std::vector<std::uint64_t> sample_arrival_counts(const ArrivalProcess& process,
                                                 double num_queues, double dt,
                                                 std::size_t epochs, Rng& rng);

} // namespace mflb
