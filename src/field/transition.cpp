#include "field/transition.hpp"

#include "math/expm.hpp"

#include <stdexcept>

namespace mflb {

ExactDiscretization::ExactDiscretization(QueueParams params, double dt)
    : params_(params), dt_(dt) {
    if (params.buffer < 1) {
        throw std::invalid_argument("ExactDiscretization: buffer must be >= 1");
    }
    if (params.service_rate <= 0.0) {
        throw std::invalid_argument("ExactDiscretization: service rate must be > 0");
    }
    if (dt <= 0.0) {
        throw std::invalid_argument("ExactDiscretization: dt must be > 0");
    }
}

Matrix ExactDiscretization::extended_generator(double arrival_rate) const {
    const int b = params_.buffer;
    const auto n = static_cast<std::size_t>(b + 2); // states 0..B plus drop row
    Matrix q(n, n);
    // Transposed generator: columns sum to zero over the Z block. Arrivals
    // move probability from column i-1 up to row i; services from column i
    // down to row i-1 (paper's Q(ν,z)_{i,i-1} = λ_t, Q_{i-1,i} = α).
    for (int i = 1; i <= b; ++i) {
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = arrival_rate;
    }
    for (int i = 1; i <= b; ++i) {
        q(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i)) = params_.service_rate;
    }
    // Diagonal: each column's outflow. State B keeps losing arrivals (they
    // are dropped, not state-changing), so its diagonal only reflects the
    // service outflow; the drop row integrates λ · P_B separately.
    for (int i = 0; i <= b; ++i) {
        double outflow = 0.0;
        if (i < b) {
            outflow += arrival_rate; // arrival leaves state i (to i+1)
        }
        if (i > 0) {
            outflow += params_.service_rate; // service leaves state i (to i-1)
        }
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = -outflow;
    }
    // Drop bookkeeping row (27): Ḋ = λ_t(z) e_B^T P.
    q(static_cast<std::size_t>(b + 1), static_cast<std::size_t>(b)) = arrival_rate;
    return q;
}

std::vector<double> ExactDiscretization::propagate_queue(int z0, double arrival_rate) const {
    const int b = params_.buffer;
    if (z0 < 0 || z0 > b) {
        throw std::invalid_argument("propagate_queue: z0 out of range");
    }
    const Matrix q = extended_generator(arrival_rate);
    std::vector<double> e(static_cast<std::size_t>(b + 2), 0.0);
    e[static_cast<std::size_t>(z0)] = 1.0;
    // Uniformization keeps the probability block non-negative by
    // construction and is cheap for these tiny tridiagonal generators.
    return expm_uniformized_action(q, dt_, e);
}

double ExactDiscretization::expected_queue_drops(int z0, double arrival_rate) const {
    return propagate_queue(z0, arrival_rate).back();
}

MeanFieldStep ExactDiscretization::step(std::span<const double> nu, const DecisionRule& h,
                                        double lambda_total) const {
    const ArrivalFlow flow = compute_arrival_flow(nu, h, lambda_total);
    MeanFieldStep result = step_with_rates(nu, flow.rate_by_state);
    result.rate_by_state = flow.rate_by_state;
    return result;
}

MeanFieldStep ExactDiscretization::step_with_rates(std::span<const double> nu,
                                                   std::span<const double> rate_by_state) const {
    const auto num_z = static_cast<std::size_t>(params_.num_states());
    if (nu.size() != num_z || rate_by_state.size() != num_z) {
        throw std::invalid_argument("step_with_rates: size mismatch");
    }
    MeanFieldStep result;
    result.nu_next.assign(num_z, 0.0);
    result.drops_by_state.assign(num_z, 0.0);
    result.rate_by_state.assign(rate_by_state.begin(), rate_by_state.end());
    for (std::size_t z = 0; z < num_z; ++z) {
        if (nu[z] == 0.0) {
            continue;
        }
        const std::vector<double> propagated =
            propagate_queue(static_cast<int>(z), rate_by_state[z]);
        for (std::size_t z2 = 0; z2 < num_z; ++z2) {
            result.nu_next[z2] += nu[z] * propagated[z2]; // eq. (23)-(24)
        }
        result.drops_by_state[z] = propagated[num_z]; // D^z(Δt), eq. (25)
        result.expected_drops += nu[z] * propagated[num_z]; // eq. (26)
    }
    return result;
}

} // namespace mflb
