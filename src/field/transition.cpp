#include "field/transition.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

ExactDiscretization::ExactDiscretization(QueueParams params, double dt)
    : params_(params), dt_(dt) {
    if (params.buffer < 1) {
        throw std::invalid_argument("ExactDiscretization: buffer must be >= 1");
    }
    if (params.service_rate <= 0.0) {
        throw std::invalid_argument("ExactDiscretization: service rate must be > 0");
    }
    if (dt <= 0.0) {
        throw std::invalid_argument("ExactDiscretization: dt must be > 0");
    }
    const auto n = static_cast<std::size_t>(params_.buffer + 2);
    ws_.q = Matrix(n, n);
    ws_.e.assign(n, 0.0);
    ws_.propagated.assign(n, 0.0);
}

void ExactDiscretization::build_generator(double arrival_rate) const {
    const int b = params_.buffer;
    Matrix& q = ws_.q;
    // Transposed generator: columns sum to zero over the Z block. Arrivals
    // move probability from column i-1 up to row i; services from column i
    // down to row i-1 (paper's Q(ν,z)_{i,i-1} = λ_t, Q_{i-1,i} = α). The
    // sparsity pattern is fixed, so rewriting these entries fully refreshes
    // the cached matrix.
    for (int i = 1; i <= b; ++i) {
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = arrival_rate;
    }
    for (int i = 1; i <= b; ++i) {
        q(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i)) = params_.service_rate;
    }
    // Diagonal: each column's outflow. State B keeps losing arrivals (they
    // are dropped, not state-changing), so its diagonal only reflects the
    // service outflow; the drop row integrates λ · P_B separately.
    for (int i = 0; i <= b; ++i) {
        double outflow = 0.0;
        if (i < b) {
            outflow += arrival_rate; // arrival leaves state i (to i+1)
        }
        if (i > 0) {
            outflow += params_.service_rate; // service leaves state i (to i-1)
        }
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = -outflow;
    }
    // Drop bookkeeping row (27): Ḋ = λ_t(z) e_B^T P.
    q(static_cast<std::size_t>(b + 1), static_cast<std::size_t>(b)) = arrival_rate;
}

Matrix ExactDiscretization::extended_generator(double arrival_rate) const {
    build_generator(arrival_rate);
    return ws_.q;
}

void ExactDiscretization::propagate_into(int z0, double arrival_rate) const {
    const int b = params_.buffer;
    if (z0 < 0 || z0 > b) {
        throw std::invalid_argument("propagate_queue: z0 out of range");
    }
    build_generator(arrival_rate);
    // Uniformization keeps the probability block non-negative by
    // construction and is cheap for these tiny tridiagonal generators; the
    // workspace variant reuses the cached matrix and series buffers.
    std::fill(ws_.e.begin(), ws_.e.end(), 0.0);
    ws_.e[static_cast<std::size_t>(z0)] = 1.0;
    expm_uniformized_action_into(ws_.q, dt_, ws_.e, ws_.uni, ws_.propagated);
}

std::vector<double> ExactDiscretization::propagate_queue(int z0, double arrival_rate) const {
    propagate_into(z0, arrival_rate);
    return ws_.propagated;
}

double ExactDiscretization::expected_queue_drops(int z0, double arrival_rate) const {
    propagate_into(z0, arrival_rate);
    return ws_.propagated.back();
}

MeanFieldStep ExactDiscretization::step(std::span<const double> nu, const DecisionRule& h,
                                        double lambda_total) const {
    MeanFieldStep result;
    step(nu, h, lambda_total, result);
    return result;
}

void ExactDiscretization::step(std::span<const double> nu, const DecisionRule& h,
                               double lambda_total, MeanFieldStep& out) const {
    compute_arrival_flow_into(nu, h, lambda_total, ws_.tuple, ws_.flow);
    step_with_rates(nu, ws_.flow.rate_by_state, out);
}

MeanFieldStep ExactDiscretization::step_with_rates(std::span<const double> nu,
                                                   std::span<const double> rate_by_state) const {
    MeanFieldStep result;
    step_with_rates(nu, rate_by_state, result);
    return result;
}

void ExactDiscretization::step_with_rates(std::span<const double> nu,
                                          std::span<const double> rate_by_state,
                                          MeanFieldStep& out) const {
    const auto num_z = static_cast<std::size_t>(params_.num_states());
    if (nu.size() != num_z || rate_by_state.size() != num_z) {
        throw std::invalid_argument("step_with_rates: size mismatch");
    }
    out.nu_next.assign(num_z, 0.0);
    out.drops_by_state.assign(num_z, 0.0);
    out.rate_by_state.assign(rate_by_state.begin(), rate_by_state.end());
    out.expected_drops = 0.0;
    for (std::size_t z = 0; z < num_z; ++z) {
        if (nu[z] == 0.0) {
            continue;
        }
        propagate_into(static_cast<int>(z), rate_by_state[z]);
        const std::vector<double>& propagated = ws_.propagated;
        for (std::size_t z2 = 0; z2 < num_z; ++z2) {
            out.nu_next[z2] += nu[z] * propagated[z2]; // eq. (23)-(24)
        }
        out.drops_by_state[z] = propagated[num_z]; // D^z(Δt), eq. (25)
        out.expected_drops += nu[z] * propagated[num_z]; // eq. (26)
    }
}

} // namespace mflb
