/// \file mfc_env.hpp
/// The upper-level mean-field control MDP of Section 2.5: states are pairs
/// (ν_t, λ_t) ∈ P(Z) × Λ, actions are lower-level decision rules h_t ∈ H,
/// dynamics follow eq. (29) — λ moves by its modulating chain, ν moves
/// deterministically by the exact discretization T_ν — and the reward is the
/// negative expected per-queue packet drops, eq. (31).
///
/// The environment supports conditioning on a fixed arrival-rate sequence
/// (as in the proof of Theorem 1) so finite systems and the mean-field limit
/// can be compared on identical λ paths.
#pragma once

#include "field/arrival_process.hpp"
#include "field/decision_rule.hpp"
#include "field/transition.hpp"
#include "support/rng.hpp"

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mflb {

/// Configuration of the mean-field control problem (defaults = Table 1).
struct MfcConfig {
    QueueParams queue{};                                    ///< B = 5, α = 1.
    int d = 2;                                              ///< sampled queues per client.
    double dt = 1.0;                                        ///< synchronization delay Δt.
    ArrivalProcess arrivals = ArrivalProcess::paper_two_state(); ///< λ_t chain.
    std::vector<double> nu0;                                ///< ν_0; empty = δ_0 (all empty).
    int horizon = 500;                                      ///< decision epochs per episode.
    double discount = 0.99;                                 ///< γ of the objective (7)/(31).

    /// Episode length matched to total running time ≈ `total_time` units, as
    /// in Figures 4-6 ("integer nearest to 500/Δt").
    static int horizon_for_total_time(double total_time, double dt) noexcept;
};

/// Stationary upper-level policy π̃ : P(Z) × Λ -> P(H). Implementations may
/// be deterministic (ignore `rng`) or stochastic (sample h_t).
class UpperLevelPolicy {
public:
    virtual ~UpperLevelPolicy() = default;
    /// Returns the decision rule for the observed queue-state distribution
    /// (exact ν in the limit model, empirical H^M in finite systems) and the
    /// current arrival-rate modulation state.
    virtual DecisionRule decide(std::span<const double> nu, std::size_t lambda_state,
                                Rng& rng) const = 0;

    /// Opaque per-caller scratch for `decide_into`. Policies whose epoch
    /// query needs workspace (e.g. the neural policy's batched forward pass)
    /// keep it here rather than in mutable members, so one policy instance
    /// stays shareable across concurrently running systems (the evaluator
    /// fans replications out over the thread pool against a single const
    /// policy).
    struct Scratch {
        virtual ~Scratch() = default;
    };
    /// Scratch for this policy's `decide_into`; nullptr when none is needed.
    virtual std::unique_ptr<Scratch> make_scratch() const { return nullptr; }

    /// In-place epoch query for the simulation hot paths: writes the rule
    /// into `out` (same draws, same result as `decide`). The default
    /// forwards to `decide` and move-assigns; overrides (neural policy) are
    /// allocation-free once `scratch` and `out` are warm.
    virtual void decide_into(std::span<const double> nu, std::size_t lambda_state, Rng& rng,
                             Scratch* scratch, DecisionRule& out) const;

    /// True when `decide`/`decide_into` actually draw from `rng` (stochastic
    /// rule selection). All shipped policies are deterministic epoch queries,
    /// so the default is false. The pipelined sharded barrier uses this to
    /// decide whether the query may run on the overlapped compute task:
    /// deterministic queries overlap; rng-consuming ones stay in the serial
    /// prologue so the caller-RNG draw order is position-independent.
    virtual bool decide_consumes_rng() const noexcept { return false; }

    virtual std::string name() const = 0;
};

/// The MFC MDP environment, eq. (29)-(31).
class MfcEnv {
public:
    explicit MfcEnv(MfcConfig config);

    const MfcConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }
    const ExactDiscretization& discretizer() const noexcept { return disc_; }

    /// Starts a fresh episode with λ_0 sampled from the modulating chain.
    void reset(Rng& rng);
    /// Starts an episode with a fixed λ-state sequence (index per epoch);
    /// used to condition finite-system comparisons on identical arrivals.
    void reset_conditioned(std::vector<std::size_t> lambda_states);

    bool done() const noexcept { return t_ >= config_.horizon; }
    int time() const noexcept { return t_; }

    std::span<const double> nu() const noexcept { return nu_; }
    std::size_t lambda_state() const noexcept { return lambda_state_; }
    double lambda_value() const { return config_.arrivals.level(lambda_state_); }

    /// Observation for learning: [ν(0), ..., ν(B), one-hot λ-state].
    std::vector<double> observation() const;
    std::size_t observation_dim() const noexcept;

    struct Outcome {
        double drops = 0.0;  ///< expected per-queue drops this epoch, D_t.
        double reward = 0.0; ///< -drops.
        bool done = false;
    };
    /// Applies a decision rule for one epoch.
    Outcome step(const DecisionRule& h, Rng& rng);

private:
    MfcConfig config_;
    ExactDiscretization disc_;
    TupleSpace space_;
    std::vector<double> nu_;
    MeanFieldStep step_buf_; ///< reused across steps (allocation-free loop).
    std::size_t lambda_state_ = 0;
    int t_ = 0;
    std::optional<std::vector<std::size_t>> conditioned_;
};

/// Rolls out one full episode under `policy`; returns the (optionally
/// discounted) sum of rewards, i.e. the negative packet drops J(π̃).
double rollout_return(MfcEnv& env, const UpperLevelPolicy& policy, Rng& rng,
                      bool discounted = false);

} // namespace mflb
