#include "math/expm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mflb {

namespace {
// Padé-13 coefficients from Higham, "The scaling and squaring method for the
// matrix exponential revisited" (2005).
constexpr double kPade13[] = {64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
                              1187353796428800.0,  129060195264000.0,   10559470521600.0,
                              670442572800.0,      33522128640.0,       1323241920.0,
                              40840800.0,          960960.0,            16380.0,
                              182.0,               1.0};
} // namespace

Matrix expm(const Matrix& a) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("expm: matrix must be square");
    }
    const std::size_t n = a.rows();
    if (n == 0) {
        return a;
    }

    // Scaling: bring the norm under the Padé-13 threshold (theta_13 = 5.37).
    const double norm = a.norm_inf();
    int squarings = 0;
    Matrix scaled = a;
    constexpr double kTheta13 = 5.371920351148152;
    if (norm > kTheta13) {
        squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
        scaled *= std::ldexp(1.0, -squarings);
    }

    const Matrix a2 = scaled * scaled;
    const Matrix a4 = a2 * a2;
    const Matrix a6 = a2 * a4;
    const Matrix eye = Matrix::identity(n);

    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    Matrix u_inner = a6 * kPade13[13] + a4 * kPade13[11] + a2 * kPade13[9];
    Matrix u = scaled * (a6 * u_inner + a6 * kPade13[7] + a4 * kPade13[5] + a2 * kPade13[3] +
                         eye * kPade13[1]);
    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    Matrix v_inner = a6 * kPade13[12] + a4 * kPade13[10] + a2 * kPade13[8];
    Matrix v = a6 * v_inner + a6 * kPade13[6] + a4 * kPade13[4] + a2 * kPade13[2] +
               eye * kPade13[0];

    // exp(A) ~= (V - U)^{-1} (V + U)
    Matrix result = solve_linear(v - u, v + u);
    for (int s = 0; s < squarings; ++s) {
        result = result * result;
    }
    return result;
}

std::vector<double> expm_uniformized_action(const Matrix& a, double t, std::span<const double> v,
                                            double uniform_rate, double tol) {
    UniformizationWorkspace ws;
    std::vector<double> result(v.size(), 0.0);
    expm_uniformized_action_into(a, t, v, ws, result, uniform_rate, tol);
    return result;
}

void expm_uniformized_action_into(const Matrix& a, double t, std::span<const double> v,
                                  UniformizationWorkspace& ws, std::span<double> out,
                                  double uniform_rate, double tol) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("expm_uniformized_action: matrix must be square");
    }
    if (v.size() != a.rows()) {
        throw std::invalid_argument("expm_uniformized_action: vector size mismatch");
    }
    if (out.size() != v.size()) {
        throw std::invalid_argument("expm_uniformized_action: output size mismatch");
    }
    if (t < 0.0) {
        throw std::invalid_argument("expm_uniformized_action: t must be >= 0");
    }
    const std::size_t n = a.rows();
    if (t == 0.0 || n == 0) {
        std::copy(v.begin(), v.end(), out.begin());
        return;
    }

    double rate = uniform_rate;
    if (rate <= 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            rate = std::max(rate, std::abs(a(i, i)));
        }
        if (rate == 0.0) {
            std::copy(v.begin(), v.end(), out.begin());
            return;
        }
        rate *= 1.0001; // strict domination avoids a zero diagonal in P
    }

    // P = I + A / rate is (sub)stochastic by the generator property. Built
    // in place in the workspace (full overwrite, so reuse is safe).
    if (ws.p.rows() != n || ws.p.cols() != n) {
        ws.p = Matrix(n, n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            ws.p(i, j) = (i == j ? 1.0 : 0.0) + a(i, j) / rate;
        }
    }

    // exp(A t) v = sum_k Pois(rate*t)(k) * P^k v. Accumulate until the
    // remaining Poisson tail mass (times a crude bound on ||P^k v||) is
    // below tol.
    const double mean = rate * t;
    ws.term.assign(v.begin(), v.end());
    ws.next.assign(n, 0.0);
    std::fill(out.begin(), out.end(), 0.0);
    double log_weight = -mean; // log of Pois pmf at k=0
    double tail_remaining = 1.0;
    const std::size_t max_terms = static_cast<std::size_t>(mean + 40.0 * std::sqrt(mean + 1.0)) + 64;
    for (std::size_t k = 0; k <= max_terms; ++k) {
        const double weight = std::exp(log_weight);
        for (std::size_t i = 0; i < n; ++i) {
            out[i] += weight * ws.term[i];
        }
        tail_remaining -= weight;
        if (tail_remaining < tol) {
            break;
        }
        ws.p.multiply_into(ws.term, ws.next);
        std::swap(ws.term, ws.next);
        log_weight += std::log(mean) - std::log(static_cast<double>(k + 1));
    }
}

std::vector<double> integrate_linear_ode_rk4(const Matrix& a, double t, std::span<const double> v,
                                             std::size_t steps) {
    if (steps == 0) {
        throw std::invalid_argument("integrate_linear_ode_rk4: steps must be > 0");
    }
    std::vector<double> y(v.begin(), v.end());
    const double h = t / static_cast<double>(steps);
    const std::size_t n = y.size();
    std::vector<double> k1, k2, k3, k4, tmp(n);
    for (std::size_t s = 0; s < steps; ++s) {
        k1 = a.multiply(y);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        k2 = a.multiply(tmp);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        k3 = a.multiply(tmp);
        for (std::size_t i = 0; i < n; ++i) {
            tmp[i] = y[i] + h * k3[i];
        }
        k4 = a.multiply(tmp);
        for (std::size_t i = 0; i < n; ++i) {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    return y;
}

} // namespace mflb
