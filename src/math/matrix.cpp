#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mflb {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) {
            throw std::invalid_argument("Matrix: ragged initializer list");
        }
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
    Matrix m(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) {
        m(i, i) = diag[i];
    }
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) {
        throw std::out_of_range("Matrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
        throw std::out_of_range("Matrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) noexcept {
    return std::span<double>(data_.data() + r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
    return std::span<const double>(data_.data() + r * cols_, cols_);
}

Matrix& Matrix::operator+=(const Matrix& other) {
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        throw std::invalid_argument("Matrix::operator+=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        throw std::invalid_argument("Matrix::operator-=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= other.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
    for (double& v : data_) {
        v *= scalar;
    }
    return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
    Matrix result = *this;
    result += other;
    return result;
}

Matrix Matrix::operator-(const Matrix& other) const {
    Matrix result = *this;
    result -= other;
    return result;
}

Matrix Matrix::operator*(double scalar) const {
    Matrix result = *this;
    result *= scalar;
    return result;
}

Matrix Matrix::operator*(const Matrix& other) const {
    if (cols_ != other.rows_) {
        throw std::invalid_argument("Matrix::operator*: shape mismatch");
    }
    Matrix result(rows_, other.cols_);
    // ikj loop order: streams through rows of `other`, good locality.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) {
                continue;
            }
            const double* brow = other.data_.data() + k * other.cols_;
            double* crow = result.data_.data() + i * other.cols_;
            for (std::size_t j = 0; j < other.cols_; ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return result;
}

bool Matrix::operator==(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

Matrix Matrix::transposed() const {
    Matrix result(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            result(j, i) = (*this)(i, j);
        }
    }
    return result;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
    std::vector<double> y(rows_, 0.0);
    multiply_into(x, y);
    return y;
}

void Matrix::multiply_into(std::span<const double> x, std::span<double> y) const {
    if (x.size() != cols_) {
        throw std::invalid_argument("Matrix::multiply: size mismatch");
    }
    if (y.size() != rows_) {
        throw std::invalid_argument("Matrix::multiply_into: output size mismatch");
    }
    for (std::size_t i = 0; i < rows_; ++i) {
        const double* arow = data_.data() + i * cols_;
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) {
            acc += arow[j] * x[j];
        }
        y[i] = acc;
    }
}

std::vector<double> Matrix::multiply_left(std::span<const double> x) const {
    if (x.size() != rows_) {
        throw std::invalid_argument("Matrix::multiply_left: size mismatch");
    }
    std::vector<double> y(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        if (xi == 0.0) {
            continue;
        }
        const double* arow = data_.data() + i * cols_;
        for (std::size_t j = 0; j < cols_; ++j) {
            y[j] += xi * arow[j];
        }
    }
    return y;
}

double Matrix::norm_inf() const noexcept {
    double best = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) {
            sum += std::abs((*this)(i, j));
        }
        best = std::max(best, sum);
    }
    return best;
}

double Matrix::norm_1() const noexcept {
    double best = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
        double sum = 0.0;
        for (std::size_t i = 0; i < rows_; ++i) {
            sum += std::abs((*this)(i, j));
        }
        best = std::max(best, sum);
    }
    return best;
}

double Matrix::max_abs() const noexcept {
    double best = 0.0;
    for (double v : data_) {
        best = std::max(best, std::abs(v));
    }
    return best;
}

void Matrix::fill(double value) noexcept {
    std::fill(data_.begin(), data_.end(), value);
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        out << (i == 0 ? "[[" : " [");
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0) {
                out << ", ";
            }
            out << (*this)(i, j);
        }
        out << (i + 1 == rows_ ? "]]" : "]\n");
    }
    return out.str();
}

namespace {
/// LU factorization with partial pivoting, in place; returns the pivot
/// permutation. Throws on (numerically) singular input.
std::vector<std::size_t> lu_factor(Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) {
        throw std::invalid_argument("solve_linear: matrix must be square");
    }
    std::vector<std::size_t> pivots(n);
    for (std::size_t i = 0; i < n; ++i) {
        pivots[i] = i;
    }
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(a(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            if (std::abs(a(i, k)) > best) {
                best = std::abs(a(i, k));
                pivot = i;
            }
        }
        if (best == 0.0) {
            throw std::invalid_argument("solve_linear: singular matrix");
        }
        if (pivot != k) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(a(k, j), a(pivot, j));
            }
            std::swap(pivots[k], pivots[pivot]);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            a(i, k) /= a(k, k);
            const double lik = a(i, k);
            if (lik == 0.0) {
                continue;
            }
            for (std::size_t j = k + 1; j < n; ++j) {
                a(i, j) -= lik * a(k, j);
            }
        }
    }
    return pivots;
}

void lu_solve_inplace(const Matrix& lu, const std::vector<std::size_t>& pivots,
                      std::span<double> x) {
    const std::size_t n = lu.rows();
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = x[pivots[i]];
    }
    // Forward substitution (unit lower-triangular L).
    for (std::size_t i = 1; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            b[i] -= lu(i, j) * b[j];
        }
    }
    // Back substitution (upper-triangular U).
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t j = ii + 1; j < n; ++j) {
            b[ii] -= lu(ii, j) * b[j];
        }
        b[ii] /= lu(ii, ii);
    }
    std::copy(b.begin(), b.end(), x.begin());
}
} // namespace

std::vector<double> solve_linear(const Matrix& a, std::span<const double> b) {
    if (b.size() != a.rows()) {
        throw std::invalid_argument("solve_linear: rhs size mismatch");
    }
    Matrix lu = a;
    const auto pivots = lu_factor(lu);
    std::vector<double> x(b.begin(), b.end());
    lu_solve_inplace(lu, pivots, x);
    return x;
}

Matrix solve_linear(const Matrix& a, const Matrix& b) {
    if (b.rows() != a.rows()) {
        throw std::invalid_argument("solve_linear: rhs shape mismatch");
    }
    Matrix lu = a;
    const auto pivots = lu_factor(lu);
    Matrix x = b;
    std::vector<double> column(a.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
            column[i] = x(i, j);
        }
        lu_solve_inplace(lu, pivots, column);
        for (std::size_t i = 0; i < a.rows(); ++i) {
            x(i, j) = column[i];
        }
    }
    return x;
}

} // namespace mflb
