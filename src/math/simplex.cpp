#include "math/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mflb {

bool is_probability_vector(std::span<const double> p, double tol) noexcept {
    double sum = 0.0;
    for (double v : p) {
        if (v < -tol || !std::isfinite(v)) {
            return false;
        }
        sum += v;
    }
    return std::abs(sum - 1.0) <= tol;
}

std::vector<double> normalized(std::span<const double> weights) {
    std::vector<double> p(weights.begin(), weights.end());
    normalize_in_place(p);
    return p;
}

void normalize_in_place(std::span<double> weights) noexcept {
    double sum = 0.0;
    for (double w : weights) {
        sum += w;
    }
    if (sum <= 0.0 || !std::isfinite(sum)) {
        const double uniform = weights.empty() ? 0.0 : 1.0 / static_cast<double>(weights.size());
        for (double& w : weights) {
            w = uniform;
        }
        return;
    }
    for (double& w : weights) {
        w /= sum;
    }
}

std::vector<double> softmax(std::span<const double> logits) {
    return softmax(logits, 1.0);
}

std::vector<double> softmax(std::span<const double> logits, double tau) {
    std::vector<double> p(logits.size());
    if (logits.empty()) {
        return p;
    }
    const double peak = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp((logits[i] - peak) / tau);
        sum += p[i];
    }
    for (double& v : p) {
        v /= sum;
    }
    return p;
}

double l1_distance(std::span<const double> p, std::span<const double> q) noexcept {
    double total = 0.0;
    const std::size_t n = std::min(p.size(), q.size());
    for (std::size_t i = 0; i < n; ++i) {
        total += std::abs(p[i] - q[i]);
    }
    for (std::size_t i = n; i < p.size(); ++i) {
        total += std::abs(p[i]);
    }
    for (std::size_t i = n; i < q.size(); ++i) {
        total += std::abs(q[i]);
    }
    return total;
}

double entropy(std::span<const double> p) noexcept {
    double h = 0.0;
    for (double v : p) {
        if (v > 0.0) {
            h -= v * std::log(v);
        }
    }
    return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q) noexcept {
    double kl = 0.0;
    const std::size_t n = std::min(p.size(), q.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (p[i] > 0.0) {
            kl += p[i] * (std::log(p[i]) - std::log(std::max(q[i], 1e-300)));
        }
    }
    return kl;
}

std::vector<double> project_to_simplex(std::span<const double> v) {
    // Sort-based algorithm of Duchi et al. (2008), O(n log n).
    std::vector<double> sorted(v.begin(), v.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    double cumulative = 0.0;
    double theta = 0.0;
    std::size_t support = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        cumulative += sorted[i];
        const double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
        if (sorted[i] - candidate > 0.0) {
            support = i + 1;
            theta = candidate;
        }
    }
    std::vector<double> result(v.size());
    if (support == 0) {
        const double uniform = v.empty() ? 0.0 : 1.0 / static_cast<double>(v.size());
        std::fill(result.begin(), result.end(), uniform);
        return result;
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
        result[i] = std::max(0.0, v[i] - theta);
    }
    return result;
}

double expectation(std::span<const double> p, std::span<const double> f) noexcept {
    double acc = 0.0;
    const std::size_t n = std::min(p.size(), f.size());
    for (std::size_t i = 0; i < n; ++i) {
        acc += p[i] * f[i];
    }
    return acc;
}

} // namespace mflb
