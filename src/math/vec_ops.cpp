#include "math/vec_ops.hpp"

#include "math/simd_dispatch.hpp"

#include <stdexcept>

namespace mflb {

namespace {

/// Below this block length the two-pass scan's extra pass costs more than
/// the broken dependency chain saves; fall back to the serial reference.
/// Part of the code shape (fixed constant), so results never depend on it
/// dynamically.
constexpr std::size_t kMinScanBlock = 16;

/// Element sources for the shared sum/scan kernel bodies. The kernels are
/// templated over the source so the fused gather variants (`gather_sum`,
/// `gather_prefix_sum`) instantiate the *same* loop bodies as the contiguous
/// variants: identical accumulator split, identical add order, hence
/// bit-identical results to the gather_scale → vec_sum/inclusive_prefix_sum
/// composition they replace.
template <class In>
struct PtrSrc {
    const In* p;
    double operator[](std::size_t i) const noexcept { return static_cast<double>(p[i]); }
    PtrSrc operator+(std::size_t off) const noexcept { return PtrSrc{p + off}; }
};

/// Reads table[idx[i]] — the destination-law gather as a source. The loop
/// body is a pure load + add (any scalar factor must be pre-folded into the
/// table), so there is no FMA-contractible multiply-add pattern and the
/// clones stay bit-identical.
struct GatherSrc {
    const int* idx;
    const double* tab;
    double operator[](std::size_t i) const noexcept {
        return tab[static_cast<std::size_t>(idx[i])];
    }
    GatherSrc operator+(std::size_t off) const noexcept { return GatherSrc{idx + off, tab}; }
};

template <class Src>
double sum4_impl(Src xs, std::size_t n) noexcept {
    // Fixed 4-lane split: lane j sums xs[4i+j]; lanes combine as
    // (l0+l1)+(l2+l3); the tail is appended left to right. The split is part
    // of the kernel contract — pure adds, no FMA pattern, so the AVX2 and
    // baseline clones agree bit for bit.
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    const std::size_t n4 = n / 4 * 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        l0 += static_cast<double>(xs[i + 0]);
        l1 += static_cast<double>(xs[i + 1]);
        l2 += static_cast<double>(xs[i + 2]);
        l3 += static_cast<double>(xs[i + 3]);
    }
    double total = (l0 + l1) + (l2 + l3);
    for (std::size_t i = n4; i < n; ++i) {
        total += static_cast<double>(xs[i]);
    }
    return total;
}

template <class In>
double sum_reference_impl(const In* __restrict xs, std::size_t n) noexcept {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<double>(xs[i]);
    }
    return total;
}

template <class In>
void scan_reference_impl(const In* __restrict in, double* __restrict out,
                         std::size_t n) noexcept {
    double running = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        running += static_cast<double>(in[i]);
        out[i] = running;
    }
}

template <class Src>
void scan4_impl(Src in, double* out, std::size_t n) noexcept {
    // Segmented two-pass scan over four equal blocks of length L = n/4:
    // pass 1 sums blocks 0-2 (three independent chains), pass 2 scans all
    // four blocks as independent chains seeded with the block offsets, then
    // finishes the n mod 4 tail serially. Reassociation happens only at the
    // three block boundaries — exact for integer-valued inputs, 1e-12
    // otherwise. Safe in place: pass 1 only reads, pass 2 writes out[i]
    // after reading in[i].
    const std::size_t len = n / 4;
    if (len < kMinScanBlock) {
        double running = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            running += static_cast<double>(in[i]);
            out[i] = running;
        }
        return;
    }
    const Src b0 = in;
    const Src b1 = in + len;
    const Src b2 = in + 2 * len;
    const Src b3 = in + 3 * len;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
        s0 += static_cast<double>(b0[i]);
        s1 += static_cast<double>(b1[i]);
        s2 += static_cast<double>(b2[i]);
    }
    double c0 = 0.0;
    double c1 = s0;
    double c2 = s0 + s1;
    double c3 = (s0 + s1) + s2;
    double* o0 = out;
    double* o1 = out + len;
    double* o2 = out + 2 * len;
    double* o3 = out + 3 * len;
    for (std::size_t i = 0; i < len; ++i) {
        c0 += static_cast<double>(b0[i]);
        c1 += static_cast<double>(b1[i]);
        c2 += static_cast<double>(b2[i]);
        c3 += static_cast<double>(b3[i]);
        o0[i] = c0;
        o1[i] = c1;
        o2[i] = c2;
        o3[i] = c3;
    }
    for (std::size_t i = 4 * len; i < n; ++i) {
        c3 += static_cast<double>(in[i]);
        out[i] = c3;
    }
}

} // namespace

MFLB_SIMD_CLONES
double vec_sum(std::span<const double> xs) noexcept {
    return sum4_impl(PtrSrc<double>{xs.data()}, xs.size());
}

MFLB_SIMD_CLONES
double vec_sum(std::span<const std::uint64_t> xs) noexcept {
    return sum4_impl(PtrSrc<std::uint64_t>{xs.data()}, xs.size());
}

double vec_sum_reference(std::span<const double> xs) noexcept {
    return sum_reference_impl(xs.data(), xs.size());
}

double vec_sum_reference(std::span<const std::uint64_t> xs) noexcept {
    return sum_reference_impl(xs.data(), xs.size());
}

MFLB_SIMD_CLONES
void inclusive_prefix_sum(std::span<const double> in, std::span<double> out) {
    if (out.size() != in.size()) {
        throw std::invalid_argument("inclusive_prefix_sum: output size mismatch");
    }
    scan4_impl(PtrSrc<double>{in.data()}, out.data(), in.size());
}

MFLB_SIMD_CLONES
void inclusive_prefix_sum(std::span<const std::uint64_t> in, std::span<double> out) {
    if (out.size() != in.size()) {
        throw std::invalid_argument("inclusive_prefix_sum: output size mismatch");
    }
    scan4_impl(PtrSrc<std::uint64_t>{in.data()}, out.data(), in.size());
}

void inclusive_prefix_sum_reference(std::span<const double> in, std::span<double> out) {
    if (out.size() != in.size()) {
        throw std::invalid_argument("inclusive_prefix_sum_reference: output size mismatch");
    }
    scan_reference_impl(in.data(), out.data(), in.size());
}

void inclusive_prefix_sum_reference(std::span<const std::uint64_t> in, std::span<double> out) {
    if (out.size() != in.size()) {
        throw std::invalid_argument("inclusive_prefix_sum_reference: output size mismatch");
    }
    scan_reference_impl(in.data(), out.data(), in.size());
}

MFLB_SIMD_CLONES
double gather_sum(std::span<const int> idx, std::span<const double> table) noexcept {
    return sum4_impl(GatherSrc{idx.data(), table.data()}, idx.size());
}

MFLB_SIMD_CLONES
void gather_prefix_sum(std::span<const int> idx, std::span<const double> table,
                       std::span<double> out) {
    if (out.size() != idx.size()) {
        throw std::invalid_argument("gather_prefix_sum: output size mismatch");
    }
    scan4_impl(GatherSrc{idx.data(), table.data()}, out.data(), idx.size());
}

MFLB_SIMD_CLONES
void gather_scale(std::span<const int> idx, std::span<const double> table, double scale,
                  std::span<double> out) {
    if (out.size() != idx.size()) {
        throw std::invalid_argument("gather_scale: output size mismatch");
    }
    const int* __restrict ix = idx.data();
    const double* __restrict tab = table.data();
    double* __restrict o = out.data();
    for (std::size_t i = 0; i < idx.size(); ++i) {
        o[i] = scale * tab[static_cast<std::size_t>(ix[i])];
    }
}

} // namespace mflb
