/// \file simd_dispatch.hpp
/// Shared runtime ISA dispatch attribute for the handful of hot numeric
/// kernels (math/gemm.cpp, math/vec_ops.cpp): each annotated function is
/// cloned for AVX2+FMA (`arch=x86-64-v3`, 4-wide double lanes) with the
/// baseline build as fallback, selected once by the loader via ifunc.
///
/// The guards mirror what target_clones actually requires: GCC on x86-64
/// emitting ELF. Clang is excluded (different multiversioning semantics for
/// this attribute), and so is any ThreadSanitizer build — TSan's
/// interceptors are not ifunc-safe, the resolver would run before the TSan
/// runtime is initialized.
///
/// Determinism: cloning never changes *which* additions happen in which
/// order — kernels under this macro are written so lanes map to distinct
/// output elements or to a fixed accumulator split that is part of the
/// kernel's contract. The only machine-visible difference the AVX2 clone may
/// introduce is FMA contraction (one rounding per multiply-add instead of
/// two), bounded by the 1e-12 agreement tests; pure-add kernels (prefix
/// sums, partition sums) have no contractible pattern and are bit-identical
/// across ISAs.
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__ELF__) && !defined(__SANITIZE_THREAD__)
#define MFLB_SIMD_CLONES __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define MFLB_SIMD_CLONES
#endif
