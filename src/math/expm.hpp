/// \file expm.hpp
/// Matrix exponentials for the exact discretization of the queue master
/// equation, eq. (20)-(28) of the paper.
///
/// Two independent algorithms are provided:
///  - `expm`: Higham's scaling-and-squaring with the degree-13 Padé
///    approximant — the general-purpose workhorse;
///  - `expm_uniformized_action`: uniformization (Jensen's method), valid for
///    CTMC generator matrices only. It computes exp(Q^T t) * v as a Poisson-
///    weighted series of products with a stochastic matrix, which is
///    numerically non-negative by construction. Tests cross-validate the two.
#pragma once

#include "math/matrix.hpp"

#include <span>
#include <vector>

namespace mflb {

/// Matrix exponential exp(A) by scaling-and-squaring with Padé-13
/// (Higham 2005). A must be square.
Matrix expm(const Matrix& a);

/// Computes y = exp(A * t) * v without forming exp(A*t), by uniformization.
/// Requirements: A is the *transposed* generator of a CTMC (columns sum to
/// zero, off-diagonals >= 0) possibly extended with absorbing bookkeeping
/// rows whose diagonal is zero; `t >= 0`. `uniform_rate` must dominate
/// max_i |A(i,i)|; pass 0 to derive it from A. Truncation adapts to reach
/// relative tolerance `tol` on the Poisson tail.
std::vector<double> expm_uniformized_action(const Matrix& a, double t,
                                            std::span<const double> v,
                                            double uniform_rate = 0.0, double tol = 1e-13);

/// Reusable buffers for expm_uniformized_action_into (the uniformized matrix
/// P and the two series terms). Sized on first use, reused afterwards.
struct UniformizationWorkspace {
    Matrix p;
    std::vector<double> term;
    std::vector<double> next;
};

/// Workspace variant of expm_uniformized_action with identical arithmetic:
/// writes the result into `out` (sized like `v`, must not alias it) and
/// performs zero heap allocations once `ws` is warm. This is the inner loop
/// of the mean-field transition hot path (field/transition.hpp).
void expm_uniformized_action_into(const Matrix& a, double t, std::span<const double> v,
                                  UniformizationWorkspace& ws, std::span<double> out,
                                  double uniform_rate = 0.0, double tol = 1e-13);

/// Reference ODE integrator: integrates y' = A y over [0, t] with RK4 using
/// `steps` uniform steps. Used only as an independent oracle in tests.
std::vector<double> integrate_linear_ode_rk4(const Matrix& a, double t,
                                             std::span<const double> v, std::size_t steps);

} // namespace mflb
