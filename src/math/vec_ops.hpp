/// \file vec_ops.hpp
/// Vectorized epoch-barrier kernels: block sums, inclusive prefix sums, and
/// the destination-law gather. These are the O(M) serial pieces of the
/// sharded DES barrier (`partition_shard_mass`, the per-shard thinning
/// prefix sums, `compute_destination_law_into`), compiled with the same
/// `target_clones` AVX2 dispatch as math/gemm.cpp (see math/simd_dispatch.hpp).
///
/// Contract, mirroring the GEMM kernels:
///  - Every kernel has a `_reference` twin with strict left-to-right
///    accumulation; the dispatched kernel agrees with it to 1e-12 relative
///    error (pinned in tests/test_vec_kernels.cpp).
///  - The dispatched kernels' accumulator split is *fixed by the code shape*
///    (4 lanes, block boundaries at n/4), never by thread count or ISA: the
///    sums are pure additions with no FMA-contractible pattern, so the AVX2
///    and baseline clones are bit-identical to each other, and results are
///    machine- and thread-count-independent.
///  - For integer-valued inputs below 2^53 (client counts, queue weights of
///    the counting client models) every reassociation is exact, so the
///    dispatched kernels equal the reference *bit for bit* — this is what
///    keeps the golden sharded trajectories pinned.
#pragma once

#include <cstdint>
#include <span>

namespace mflb {

/// Σ xs with a fixed 4-lane accumulator split: lane j sums xs[4i+j], lanes
/// combine as (l0+l1)+(l2+l3), then the tail (n mod 4 elements) is appended
/// left to right. Exact for integer-valued inputs; 1e-12 vs the reference
/// otherwise.
double vec_sum(std::span<const double> xs) noexcept;
/// Integer-weight overload (finite-N client counts); same lane structure,
/// exact for totals below 2^53.
double vec_sum(std::span<const std::uint64_t> xs) noexcept;

/// Strict left-to-right sum — the scalar reference path.
double vec_sum_reference(std::span<const double> xs) noexcept;
double vec_sum_reference(std::span<const std::uint64_t> xs) noexcept;

/// Inclusive prefix sum out[i] = Σ_{j<=i} in[j], the thinning/weight-law
/// realization of the event-driven backends (binary search on `out` draws
/// destinations). Segmented two-pass scan: four equal blocks are summed
/// first, then scanned in parallel chains seeded with the block offsets;
/// differs from the serial scan only by reassociation at block boundaries
/// (exact for integer-valued inputs, 1e-12 otherwise). `out` must have
/// in.size() elements; in-place operation (out == in) is allowed for the
/// double overload.
void inclusive_prefix_sum(std::span<const double> in, std::span<double> out);
void inclusive_prefix_sum(std::span<const std::uint64_t> in, std::span<double> out);

/// Strict serial scan — the scalar reference path.
void inclusive_prefix_sum_reference(std::span<const double> in, std::span<double> out);
void inclusive_prefix_sum_reference(std::span<const std::uint64_t> in, std::span<double> out);

/// out[i] = scale * table[idx[i]] — the destination-law gather: per-queue
/// law from the per-state sums. Pure per-element arithmetic (no reductions),
/// so the result is bit-identical regardless of ISA clone.
void gather_scale(std::span<const int> idx, std::span<const double> table, double scale,
                  std::span<double> out);

/// Σ_i table[idx[i]] with the same fixed 4-lane split as `vec_sum`. The
/// kernel instantiates the identical loop body as `vec_sum` over a gathering
/// source, so the result is bit-equal to `gather_scale(idx, table, 1.0, tmp)`
/// followed by `vec_sum(tmp)` — without materializing `tmp`. Fold any scalar
/// factor into the table beforehand (the loop is a pure load + add; keeping
/// the multiply out of it prevents FMA contraction from changing bits).
double gather_sum(std::span<const int> idx, std::span<const double> table) noexcept;

/// out[i] = Σ_{j<=i} table[idx[j]] with the same segmented two-pass scan
/// shape as `inclusive_prefix_sum`; bit-equal to the gather_scale →
/// inclusive_prefix_sum composition it replaces. `out` must have idx.size()
/// elements and must not alias `table`.
void gather_prefix_sum(std::span<const int> idx, std::span<const double> table,
                       std::span<double> out);

} // namespace mflb
