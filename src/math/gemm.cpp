#include "math/gemm.hpp"

#include "math/simd_dispatch.hpp"

#include <algorithm>

// Runtime ISA dispatch (MFLB_SIMD_CLONES, shared with math/vec_ops.cpp):
// each kernel is cloned for AVX2+FMA (4-wide double lanes, fused
// multiply-add) with the baseline build as fallback, selected once by the
// loader. Lanes map one-to-one onto output elements and no reduction is ever
// split, so results stay deterministic for a fixed machine and thread count;
// FMA contraction rounds each multiply-add once instead of twice, which
// keeps the batched passes within ~1 ulp per term of the scalar path (the
// 1e-12 agreement contract pinned in test_mlp.cpp), in exchange for ~2x
// per-core throughput.

namespace mflb {

namespace {
constexpr std::size_t kRowTile = 4; ///< C-row tile: fits L1 alongside one streamed B row.
} // namespace

MFLB_SIMD_CLONES
void gemm_nt_acc(std::size_t m, std::size_t n, std::size_t k,
                 const double* __restrict a, const double* __restrict b,
                 double* __restrict c) noexcept {
    // 4x4 register tile; the k reduction stays innermost with 16 independent
    // accumulators, each summing in ascending p order (same order as the
    // naive dot product, so results are bit-identical to it).
    std::size_t i = 0;
    for (; i + kRowTile <= m; i += kRowTile) {
        const double* a0 = a + (i + 0) * k;
        const double* a1 = a + (i + 1) * k;
        const double* a2 = a + (i + 2) * k;
        const double* a3 = a + (i + 3) * k;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const double* b0 = b + (j + 0) * k;
            const double* b1 = b + (j + 1) * k;
            const double* b2 = b + (j + 2) * k;
            const double* b3 = b + (j + 3) * k;
            double acc0[4];
            double acc1[4];
            double acc2[4];
            double acc3[4];
            for (std::size_t jj = 0; jj < 4; ++jj) {
                acc0[jj] = c[(i + 0) * n + j + jj];
                acc1[jj] = c[(i + 1) * n + j + jj];
                acc2[jj] = c[(i + 2) * n + j + jj];
                acc3[jj] = c[(i + 3) * n + j + jj];
            }
            const double* rows[4] = {b0, b1, b2, b3};
            for (std::size_t p = 0; p < k; ++p) {
                const double x0 = a0[p];
                const double x1 = a1[p];
                const double x2 = a2[p];
                const double x3 = a3[p];
                for (std::size_t jj = 0; jj < 4; ++jj) {
                    const double y = rows[jj][p];
                    acc0[jj] += x0 * y;
                    acc1[jj] += x1 * y;
                    acc2[jj] += x2 * y;
                    acc3[jj] += x3 * y;
                }
            }
            for (std::size_t jj = 0; jj < 4; ++jj) {
                c[(i + 0) * n + j + jj] = acc0[jj];
                c[(i + 1) * n + j + jj] = acc1[jj];
                c[(i + 2) * n + j + jj] = acc2[jj];
                c[(i + 3) * n + j + jj] = acc3[jj];
            }
        }
        for (; j < n; ++j) {
            const double* bj = b + j * k;
            double s0 = c[(i + 0) * n + j];
            double s1 = c[(i + 1) * n + j];
            double s2 = c[(i + 2) * n + j];
            double s3 = c[(i + 3) * n + j];
            for (std::size_t p = 0; p < k; ++p) {
                const double y = bj[p];
                s0 += a0[p] * y;
                s1 += a1[p] * y;
                s2 += a2[p] * y;
                s3 += a3[p] * y;
            }
            c[(i + 0) * n + j] = s0;
            c[(i + 1) * n + j] = s1;
            c[(i + 2) * n + j] = s2;
            c[(i + 3) * n + j] = s3;
        }
    }
    for (; i < m; ++i) {
        const double* ai = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const double* bj = b + j * k;
            double s = c[i * n + j];
            for (std::size_t p = 0; p < k; ++p) {
                s += ai[p] * bj[p];
            }
            c[i * n + j] = s;
        }
    }
}

MFLB_SIMD_CLONES
void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k,
                 const double* __restrict a, const double* __restrict b,
                 double* __restrict c) noexcept {
    // Sum of k rank-1 updates accumulated in ascending p (sample) order —
    // identical addition order to a per-sample gradient loop. Same 4x8
    // register tile as gemm_nn_acc; only the A indexing differs (A is k x m,
    // so the four scalars per p are the contiguous a[p][i..i+3]).
    constexpr std::size_t kTj = 8;
    std::size_t i = 0;
    for (; i + kRowTile <= m; i += kRowTile) {
        std::size_t j = 0;
        for (; j + kTj <= n; j += kTj) {
            double acc0[kTj], acc1[kTj], acc2[kTj], acc3[kTj];
            for (std::size_t jj = 0; jj < kTj; ++jj) {
                acc0[jj] = c[(i + 0) * n + j + jj];
                acc1[jj] = c[(i + 1) * n + j + jj];
                acc2[jj] = c[(i + 2) * n + j + jj];
                acc3[jj] = c[(i + 3) * n + j + jj];
            }
            for (std::size_t p = 0; p < k; ++p) {
                const double* ap = a + p * m + i;
                const double* bp = b + p * n + j;
                const double x0 = ap[0], x1 = ap[1], x2 = ap[2], x3 = ap[3];
                for (std::size_t jj = 0; jj < kTj; ++jj) {
                    const double y = bp[jj];
                    acc0[jj] += x0 * y;
                    acc1[jj] += x1 * y;
                    acc2[jj] += x2 * y;
                    acc3[jj] += x3 * y;
                }
            }
            for (std::size_t jj = 0; jj < kTj; ++jj) {
                c[(i + 0) * n + j + jj] = acc0[jj];
                c[(i + 1) * n + j + jj] = acc1[jj];
                c[(i + 2) * n + j + jj] = acc2[jj];
                c[(i + 3) * n + j + jj] = acc3[jj];
            }
        }
        for (; j < n; ++j) {
            double s0 = c[(i + 0) * n + j], s1 = c[(i + 1) * n + j], s2 = c[(i + 2) * n + j],
                   s3 = c[(i + 3) * n + j];
            for (std::size_t p = 0; p < k; ++p) {
                const double* ap = a + p * m + i;
                const double y = b[p * n + j];
                s0 += ap[0] * y;
                s1 += ap[1] * y;
                s2 += ap[2] * y;
                s3 += ap[3] * y;
            }
            c[(i + 0) * n + j] = s0;
            c[(i + 1) * n + j] = s1;
            c[(i + 2) * n + j] = s2;
            c[(i + 3) * n + j] = s3;
        }
    }
    for (; i < m; ++i) {
        std::size_t j = 0;
        for (; j + kTj <= n; j += kTj) {
            double acc[kTj];
            for (std::size_t jj = 0; jj < kTj; ++jj) {
                acc[jj] = c[i * n + j + jj];
            }
            for (std::size_t p = 0; p < k; ++p) {
                const double* bp = b + p * n + j;
                const double x = a[p * m + i];
                for (std::size_t jj = 0; jj < kTj; ++jj) {
                    acc[jj] += x * bp[jj];
                }
            }
            for (std::size_t jj = 0; jj < kTj; ++jj) {
                c[i * n + j + jj] = acc[jj];
            }
        }
        for (; j < n; ++j) {
            double s = c[i * n + j];
            for (std::size_t p = 0; p < k; ++p) {
                s += a[p * m + i] * b[p * n + j];
            }
            c[i * n + j] = s;
        }
    }
}

void transpose(std::size_t rows, std::size_t cols, const double* __restrict in,
               double* __restrict out) noexcept {
    // 8x8 blocks keep both the source rows and the destination rows within
    // cache lines; plain copies, no arithmetic, so no ordering concerns.
    constexpr std::size_t kBlock = 8;
    for (std::size_t r0 = 0; r0 < rows; r0 += kBlock) {
        const std::size_t r1 = std::min(rows, r0 + kBlock);
        for (std::size_t c0 = 0; c0 < cols; c0 += kBlock) {
            const std::size_t c1 = std::min(cols, c0 + kBlock);
            for (std::size_t r = r0; r < r1; ++r) {
                for (std::size_t c = c0; c < c1; ++c) {
                    out[c * rows + r] = in[r * cols + c];
                }
            }
        }
    }
}

} // namespace mflb
