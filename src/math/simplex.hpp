/// \file simplex.hpp
/// Probability-vector helpers for distributions over the queue state space
/// P(Z) and over actions P(U): normalization, softmax (the paper's "manual
/// normalization" of Gaussian logits), l1 distance used in Theorem 1, and
/// entropy/KL for the RL stack.
#pragma once

#include <span>
#include <vector>

namespace mflb {

/// True if every entry is >= -tol and entries sum to 1 within tol.
bool is_probability_vector(std::span<const double> p, double tol = 1e-9) noexcept;

/// Scales a non-negative vector to sum 1. Zero vectors become uniform.
std::vector<double> normalized(std::span<const double> weights);
/// In-place variant of `normalized`.
void normalize_in_place(std::span<double> weights) noexcept;

/// Numerically stable softmax.
std::vector<double> softmax(std::span<const double> logits);
/// Softmax with temperature tau > 0; tau -> 0 approaches argmax.
std::vector<double> softmax(std::span<const double> logits, double tau);

/// l1 distance sum_i |p_i - q_i| (the norm used in the paper's analysis).
double l1_distance(std::span<const double> p, std::span<const double> q) noexcept;

/// Shannon entropy in nats; 0 log 0 = 0.
double entropy(std::span<const double> p) noexcept;

/// KL divergence KL(p || q) in nats; infinite if q lacks support, guarded
/// by a floor of 1e-300 on q.
double kl_divergence(std::span<const double> p, std::span<const double> q) noexcept;

/// Euclidean projection onto the probability simplex (Duchi et al. 2008).
/// Used by the ablation that optimizes raw simplex actions.
std::vector<double> project_to_simplex(std::span<const double> v);

/// Expectation of f over p, i.e. sum_i p_i f_i.
double expectation(std::span<const double> p, std::span<const double> f) noexcept;

} // namespace mflb
