/// \file matrix.hpp
/// Small dense row-major matrix used throughout the mean-field transition
/// kernel and the neural-network layers. Generator matrices here are tiny
/// ((B+2)x(B+2) with B = 5 by default) so a straightforward cache-friendly
/// implementation with loop-order ikj multiplication is both simple and fast.
/// \see math/expm.hpp, which exponentiates the extended generators of
/// eq. (27) built on this type.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace mflb {

/// Row-major dense matrix of doubles with value semantics.
class Matrix {
public:
    Matrix() = default;
    /// Zero-initialized rows x cols matrix.
    Matrix(std::size_t rows, std::size_t cols);
    /// Builds from nested initializer lists; all rows must have equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);
    /// Matrix with `diag` on the main diagonal.
    static Matrix diagonal(std::span<const double> diag);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }
    /// Bounds-checked accessor; throws std::out_of_range.
    double& at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /// Contiguous row view.
    std::span<double> row(std::size_t r) noexcept;
    std::span<const double> row(std::size_t r) const noexcept;
    std::span<const double> data() const noexcept { return data_; }
    std::span<double> data() noexcept { return data_; }

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(double scalar) noexcept;
    Matrix operator+(const Matrix& other) const;
    Matrix operator-(const Matrix& other) const;
    Matrix operator*(double scalar) const;
    /// Matrix product; dimensions must be compatible.
    Matrix operator*(const Matrix& other) const;
    bool operator==(const Matrix& other) const noexcept;

    Matrix transposed() const;
    /// Matrix-vector product (x sized cols()).
    std::vector<double> multiply(std::span<const double> x) const;
    /// Matrix-vector product into a caller-provided buffer (y sized rows());
    /// allocation-free. `y` must not alias `x`.
    void multiply_into(std::span<const double> x, std::span<double> y) const;
    /// Vector-matrix product (x sized rows()); i.e. x^T * A.
    std::vector<double> multiply_left(std::span<const double> x) const;

    /// Maximum absolute row sum (induced infinity norm).
    double norm_inf() const noexcept;
    /// Maximum absolute column sum (induced 1-norm).
    double norm_1() const noexcept;
    /// Largest absolute entry.
    double max_abs() const noexcept;

    /// Fills every entry with `value`.
    void fill(double value) noexcept;

    std::string to_string(int precision = 4) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves A x = b by partial-pivot Gaussian elimination (A square, copied).
/// Throws std::invalid_argument on singular systems. Used by the Padé
/// matrix-exponential solver; sizes here are tiny.
std::vector<double> solve_linear(const Matrix& a, std::span<const double> b);

/// Solves A X = B for a matrix right-hand side.
Matrix solve_linear(const Matrix& a, const Matrix& b);

} // namespace mflb
