/// \file gemm.hpp
/// Cache-blocked dense matrix-multiply kernels for the batched training
/// stack (rl/mlp.hpp). All matrices are row-major double buffers; the three
/// variants cover the layer shapes of an MLP training step:
///
///   - gemm_tn_acc — C += Aᵀ · B   (both operands k-major: the forward,
///     input-delta, and weight-gradient passes all reduce to this shape by
///     transposing the smaller operand into a workspace buffer)
///   - gemm_nt_acc — C += A · Bᵀ   (register-tiled dot-product variant)
///
/// Determinism contract: every output element accumulates its reduction in
/// strictly ascending k order, exactly like the naive three-loop product, so
/// results are bit-identical to the per-sample scalar loops they replace
/// (blocking reorders *which* elements are computed when, never the
/// floating-point addition order *within* an element). This is what lets the
/// batched PPO update reproduce the legacy per-sample update to the last bit
/// and keeps training results independent of batching internals.
/// \see rl/mlp.hpp for the batch-major layer passes built on these kernels.
#pragma once

#include <cstddef>

namespace mflb {

/// The buffers of one call must not overlap (spelled `__restrict` in the
/// implementation so the row-streaming inner loops vectorize under the
/// strict FP model — lanes are distinct output elements, never a split
/// reduction).
///
/// C (m×n) += A (m×k) · Bᵀ where B is n×k row-major; i.e.
/// c[i][j] += Σ_p a[i][p] · b[j][p], p ascending. Register-tiled dot-product
/// kernel; used where a transposed operand is not available.
void gemm_nt_acc(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
                 double* c) noexcept;

/// C (m×n) += Aᵀ · B where A is k×m and B is k×n row-major;
/// c[i][j] += Σ_p a[p][i] · b[p][j], p ascending. The training workhorse:
/// a sum of k rank-1 updates accumulated in order, with a register-resident
/// 4×8 C tile and contiguous per-p loads of both operands — the shape GCC
/// SLP-vectorizes cleanly under strict FP.
void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
                 double* c) noexcept;

/// OUT (cols×rows) = transpose of the row-major IN (rows×cols). Helper for
/// bringing operands into the k-major layout gemm_tn_acc wants without
/// changing any accumulation order.
void transpose(std::size_t rows, std::size_t cols, const double* in, double* out) noexcept;

} // namespace mflb
