#!/usr/bin/env bash
# Compare two TimingLog JSON artifacts (e.g. bench_des_scale --json outputs
# from two commits) and fail when any row regressed by more than the
# threshold (default 15%).
#
#   usage: check-bench-regression.sh OLD.json NEW.json [THRESHOLD_PCT]
#          check-bench-regression.sh --require EXPECTED.txt NEW.json...
#
# Row semantics, matching the bench label conventions:
#   - plain rows carry seconds: regression = new > old * (1 + threshold);
#   - "*speedup*" and "*event_rate*" rows carry ratios / throughputs where
#     bigger is better: regression = new < old / (1 + threshold) — this
#     covers the pipeline A/B rows (`sharded_pipeline_speedup_*`) of the
#     overlapped epoch barrier alongside the thread-scaling speedups;
#   - "*fraction*" rows are dimensionless splits (e.g. the barrier's serial
#     fraction or the telemetry overhead) whose healthy value depends on the
#     host — they are reported but never gate.
# Rows present in only one file are reported and skipped — which means a
# silently dropped row (renamed label, dead section) never fails the diff.
# `--require` closes that hole: it checks that every `bench/label` key listed
# in EXPECTED.txt (one per line, #-comments allowed) appears in the union of
# the given artifacts, and fails on any missing row. Exits non-zero iff a
# gating row regressed (diff mode) or an expected row is missing (--require).
set -euo pipefail

if [ "${1:-}" = "--require" ]; then
    if [ "$#" -lt 3 ]; then
        echo "usage: $0 --require EXPECTED.txt NEW.json..." >&2
        exit 2
    fi
    shift
    EXPECTED_FILE="$1"
    shift
    EXPECTED_FILE="$EXPECTED_FILE" python3 - "$@" <<'PY'
import json
import os
import sys

present = set()
for path in sys.argv[1:]:
    with open(path) as f:
        for row in json.load(f):
            present.add(f"{row['bench']}/{row['label']}")

missing = []
with open(os.environ["EXPECTED_FILE"]) as f:
    for line in f:
        key = line.split("#", 1)[0].strip()
        if not key:
            continue
        if key in present:
            print(f"  ok {key}")
        else:
            missing.append(key)
            print(f"  MISSING {key}")

if missing:
    print(f"{len(missing)} expected benchmark row(s) missing: " + ", ".join(missing))
    sys.exit(1)
print("all expected benchmark rows present")
PY
    exit 0
fi

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [THRESHOLD_PCT]" >&2
    echo "       $0 --require EXPECTED.txt NEW.json..." >&2
    exit 2
fi

OLD_JSON="$1" NEW_JSON="$2" THRESHOLD_PCT="${3:-15}" python3 - <<'PY'
import json
import os
import sys

old_path = os.environ["OLD_JSON"]
new_path = os.environ["NEW_JSON"]
threshold = float(os.environ["THRESHOLD_PCT"]) / 100.0


def load(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        out[f"{row['bench']}/{row['label']}"] = float(row["seconds"])
    return out


old = load(old_path)
new = load(new_path)

regressions = []
for key in sorted(old.keys() | new.keys()):
    if key not in old or key not in new:
        print(f"  only in {'new' if key in new else 'old'}: {key} (skipped)")
        continue
    a, b = old[key], new[key]
    if "fraction" in key:
        print(f"  info {key}: {a:.4f} -> {b:.4f} (not gated)")
        continue
    if "speedup" in key or "event_rate" in key:
        ok = b >= a / (1.0 + threshold)
        change = f"{a:.3f}x -> {b:.3f}x"
    else:
        ok = b <= a * (1.0 + threshold)
        change = f"{a:.4f}s -> {b:.4f}s"
    if not ok:
        regressions.append(key)
        print(f"  REGRESSED {key}: {change}")
    else:
        print(f"  ok {key}: {change}")

if regressions:
    print(f"{len(regressions)} benchmark row(s) regressed beyond "
          f"{100 * threshold:.0f}%: " + ", ".join(regressions))
    sys.exit(1)
print("no benchmark regressions")
PY
