#!/usr/bin/env python3
"""Schema validation for the unified telemetry layer's output artifacts.

Validates metrics series files (JSONL, or CSV for paths ending in .csv) as
written by --metrics-out and chrome://tracing span files as written by
--trace-out. Used by the CI Release telemetry smoke and usable locally:

  scripts/validate-telemetry.py \
      --metrics eval.jsonl --expect-series sharded_epoch --min-rows 10 \
      --expect-field fel_schedules \
      --trace eval_trace.json --expect-span policy_query

Exits non-zero listing every violation. JSONL rows must be one JSON object
per line with a string "series", an integer "step", and numeric-or-null
values for every other field. CSV files must have a "series,step,..." header
and a constant column count. Trace files must be a JSON object whose
"traceEvents" is a non-empty list of complete events ("ph": "X") with string
names and numeric ts/dur/pid/tid.
"""

import argparse
import json
import sys


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def validate_jsonl(path, errors, seen_series, seen_fields):
    rows = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(errors, path, f"line {lineno}: not valid JSON ({e})")
                continue
            if not isinstance(row, dict):
                fail(errors, path, f"line {lineno}: row is not an object")
                continue
            series = row.get("series")
            if not isinstance(series, str) or not series:
                fail(errors, path, f"line {lineno}: missing string 'series'")
            else:
                seen_series.add(series)
            seen_fields.update(k for k in row if k not in ("series", "step"))
            if not isinstance(row.get("step"), int):
                fail(errors, path, f"line {lineno}: missing integer 'step'")
            for key, value in row.items():
                if key == "series":
                    continue
                if value is not None and not isinstance(value, (int, float)):
                    fail(errors, path,
                         f"line {lineno}: field '{key}' is not numeric or null")
            rows += 1
    return rows


def validate_csv(path, errors, seen_series, seen_fields):
    rows = 0
    with open(path, encoding="utf-8") as f:
        header = f.readline().rstrip("\n")
        columns = header.split(",")
        if columns[:2] != ["series", "step"]:
            fail(errors, path, f"header must start with 'series,step', got '{header}'")
            return 0
        seen_fields.update(columns[2:])
        for lineno, line in enumerate(f, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            cells = line.split(",")
            if len(cells) != len(columns):
                fail(errors, path,
                     f"line {lineno}: {len(cells)} cells, header has {len(columns)}")
                continue
            seen_series.add(cells[0])
            for key, cell in zip(columns[1:], cells[1:]):
                try:
                    float(cell)  # accepts ints, floats, and "nan"
                except ValueError:
                    fail(errors, path,
                         f"line {lineno}: column '{key}' value '{cell}' is not numeric")
            rows += 1
    return rows


def validate_trace(path, errors, seen_spans):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (json.JSONDecodeError, OSError) as e:
        fail(errors, path, f"not valid JSON ({e})")
        return 0
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        fail(errors, path, "missing 'traceEvents' list")
        return 0
    if not events:
        fail(errors, path, "'traceEvents' is empty")
        return 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(errors, path, f"event {i}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(errors, path, f"event {i}: missing string 'name'")
        else:
            seen_spans.add(name)
        if event.get("ph") != "X":
            fail(errors, path, f"event {i}: expected complete event 'ph': 'X'")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                fail(errors, path, f"event {i}: missing numeric '{key}'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(errors, path, f"event {i}: missing integer '{key}'")
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", action="append", default=[],
                        help="metrics series file (JSONL, or CSV if it ends in .csv)")
    parser.add_argument("--trace", action="append", default=[],
                        help="chrome://tracing JSON file")
    parser.add_argument("--min-rows", type=int, default=1,
                        help="minimum rows required in every metrics file")
    parser.add_argument("--expect-series", action="append", default=[],
                        help="series name that must appear across the metrics files")
    parser.add_argument("--expect-field", action="append", default=[],
                        help="metrics field (column) that must appear across the "
                             "metrics files, e.g. a registered counter like "
                             "fel_schedules")
    parser.add_argument("--expect-span", action="append", default=[],
                        help="span name that must appear across the trace files")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("nothing to validate: pass --metrics and/or --trace")

    errors = []
    seen_series, seen_spans, seen_fields = set(), set(), set()
    for path in args.metrics:
        validate = validate_csv if path.endswith(".csv") else validate_jsonl
        try:
            rows = validate(path, errors, seen_series, seen_fields)
        except OSError as e:
            fail(errors, path, f"cannot read ({e})")
            continue
        if rows < args.min_rows:
            fail(errors, path, f"only {rows} rows, expected at least {args.min_rows}")
        print(f"{path}: {rows} rows, series {sorted(seen_series)}")
    for path in args.trace:
        events = validate_trace(path, errors, seen_spans)
        print(f"{path}: {events} trace events")
    for series in args.expect_series:
        if series not in seen_series:
            errors.append(f"expected series '{series}' not found "
                          f"(saw {sorted(seen_series)})")
    for field in args.expect_field:
        if field not in seen_fields:
            errors.append(f"expected metrics field '{field}' not found "
                          f"(saw {sorted(seen_fields)})")
    for span in args.expect_span:
        if span not in seen_spans:
            errors.append(f"expected span '{span}' not found "
                          f"(saw {sorted(seen_spans)})")

    if errors:
        print(f"\n{len(errors)} telemetry validation error(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("telemetry artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
