#!/usr/bin/env bash
# Check (default) or fix (--fix) clang-format compliance.
#
# Only files *changed relative to the merge base with main* are considered, so
# the hook never mass-reformats pre-existing code. Run from anywhere in the
# repo.
#
# Usage:
#   scripts/check-format.sh          # report violations, exit 1 if any
#   scripts/check-format.sh --fix    # apply formatting in place
#   scripts/check-format.sh --all    # consider every tracked C++ file
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

MODE=check
SCOPE=changed
for arg in "$@"; do
    case "$arg" in
        --fix) MODE=fix ;;
        --all) SCOPE=all ;;
        *) echo "usage: $0 [--fix] [--all]" >&2; exit 2 ;;
    esac
done

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
    echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT=... to override)" >&2
    exit 2
fi

if [ "$SCOPE" = all ]; then
    mapfile -t files < <(git ls-files -- '*.cpp' '*.hpp')
else
    base=$(git merge-base HEAD origin/main 2>/dev/null \
        || git merge-base HEAD main 2>/dev/null \
        || echo HEAD)
    mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$base" -- '*.cpp' '*.hpp')
fi

if [ "${#files[@]}" -eq 0 ]; then
    echo "check-format: no C++ files to check"
    exit 0
fi

if [ "$MODE" = fix ]; then
    "$CLANG_FORMAT" -i "${files[@]}"
    echo "check-format: formatted ${#files[@]} file(s)"
    exit 0
fi

bad=0
for f in "${files[@]}"; do
    if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "check-format: run scripts/check-format.sh --fix" >&2
    exit 1
fi
echo "check-format: ${#files[@]} file(s) clean"
